module Testability = Hlts_testability.Testability
module Obs = Hlts_obs
module Pool = Hlts_pool.Pool

type stop =
  | Cost_improving
  | Exhaustive

type params = {
  k : int;
  alpha : float;
  beta : float;
  bits : int;
  strategy : Candidates.strategy;
  stop : stop;
  latency_factor : float;
  max_iterations : int;
}

let default_params =
  {
    k = 3;
    alpha = 2.0;
    beta = 1.0;
    bits = 8;
    strategy = Candidates.Balance;
    stop = Cost_improving;
    latency_factor = 1.5;
    max_iterations = 1000;
  }

type record = {
  iteration : int;
  description : string;
  delta_e : int;
  delta_h : float;
  cost : float;
  seq_depth : float;
}

type result = {
  final : State.t;
  records : record list;
  iterations : int;
}

let attempt state ~bits pair =
  Obs.count "synth.merge_attempts";
  match pair with
  | Candidates.Units (a, b) -> Merge.modules state ~bits a b
  | Candidates.Registers (a, b) -> Merge.registers state ~bits a b

(* Score-ordered candidate pairs for one iteration, reported on the
   iteration span. *)
let score_candidates params ~sp state =
  let analysis = State.analysis state in
  let scored =
    Obs.span ~cat:"candidates" "candidates.score" (fun csp ->
        let scored = Candidates.all_scored state analysis params.strategy in
        Obs.set csp "pool" (Obs.Int (List.length scored));
        scored)
  in
  Obs.set sp "pool" (Obs.Int (List.length scored));
  List.map fst scored

(* dE is in control steps; dH in mm2. To make alpha/beta trade them
   off the way the paper's parameter triples do, dH is expressed in
   register-equivalents at the target bit width (one register of the
   module library = 1 hardware unit). Both the sequential and the
   pooled step use these exact closures, so the commit rule — and with
   it the trajectory — cannot drift between the two paths. *)
let metrics params ~budget =
  let reg_unit = Hlts_floorplan.Module_library.reg_area ~bits:params.bits in
  let cost o =
    (params.alpha *. float_of_int o.Merge.delta_e)
    +. (params.beta *. o.Merge.delta_h /. reg_unit)
  in
  let acceptable o =
    Hlts_sched.Schedule.length o.Merge.state.State.schedule <= budget
    &&
    match params.stop with
    | Exhaustive -> true
    | Cost_improving -> cost o < 0.0
  in
  (cost, acceptable)

(* The same commit rule on slim [(dE, dH, sched_len)] triples. The
   pooled step decides on these (the full outcome never crosses the
   wire), and the journal verdicts below are derived from them in both
   paths, so serial and pooled runs cannot disagree on a verdict. *)
let metrics_d params ~budget =
  let reg_unit = Hlts_floorplan.Module_library.reg_area ~bits:params.bits in
  let cost_d (delta_e, delta_h, _) =
    (params.alpha *. float_of_int delta_e)
    +. (params.beta *. delta_h /. reg_unit)
  in
  let acceptable_d ((_, _, sched_len) as d) =
    sched_len <= budget
    &&
    match params.stop with
    | Exhaustive -> true
    | Cost_improving -> cost_d d < 0.0
  in
  (cost_d, acceptable_d)

(* --- decision journal ---------------------------------------------------- *)

let journal_pair = function
  | Candidates.Units (a, b) -> Obs.Journal.Units (a, b)
  | Candidates.Registers (a, b) -> Obs.Journal.Registers (a, b)

let slim_of_outcome o =
  ( o.Merge.delta_e,
    o.Merge.delta_h,
    Hlts_sched.Schedule.length o.Merge.state.State.schedule )

(* Per-candidate verdicts for one evaluated batch, in candidate order:
   Candidate_scored for every feasible attempt, then a rejection reason
   for every non-winner (the winner's Merge_committed follows
   separately). Emitted *after* the batch's attempt/replay stream in
   both the serial and the pooled step — attempts interleave their own
   Reschedule events, and those streams only match across paths if the
   verdicts come post-hoc in both. *)
let journal_verdicts params ~budget slims ~winner =
  if Obs.enabled () then begin
    let _, acceptable_d = metrics_d params ~budget in
    List.iteri
      (fun i (pair, slim) ->
        let pair = journal_pair pair in
        match slim with
        | None ->
          Obs.journal
            (Obs.Journal.Candidate_rejected
               { pair; reason = Obs.Journal.Infeasible })
        | Some ((delta_e, delta_h, sched_len) as d) ->
          Obs.journal
            (Obs.Journal.Candidate_scored { pair; delta_e; delta_h; sched_len });
          if winner <> Some i then begin
            let reason =
              if sched_len > budget then Obs.Journal.Over_budget
              else if not (acceptable_d d) then Obs.Journal.Not_improving
              else Obs.Journal.Not_selected
            in
            Obs.journal (Obs.Journal.Candidate_rejected { pair; reason })
          end)
      slims
  end

let journal_committed outcome ~reason ~cost =
  if Obs.enabled () then
    Obs.journal
      (Obs.Journal.Merge_committed
         {
           description = outcome.Merge.description;
           reason;
           delta_e = outcome.Merge.delta_e;
           delta_h = outcome.Merge.delta_h;
           cost;
         })

let journal_iter_begin ~iteration ~pool =
  if Obs.enabled () then
    Obs.journal (Obs.Journal.Iter_begin { iteration; pool })

let top_reason params rank =
  Printf.sprintf "cheapest acceptable of top-%d (rank %d)" params.k rank

let widened_reason rank = Printf.sprintf "widened scan rank %d" rank

(* One iteration: select the k best-balanced candidate pairs, estimate
   dE/dH for each feasible merger, commit the cheapest acceptable one.
   If none of the top-k qualifies, the scan widens down the score-ordered
   list (keeping the testability priority) until an acceptable merger is
   found; [None] when none exists anywhere, which terminates the loop.
   [sp] is the enclosing iteration span; candidate-pool behaviour is
   reported on it. *)
let step params ~budget ~sp ~iteration state =
  let candidates = score_candidates params ~sp state in
  journal_iter_begin ~iteration ~pool:(List.length candidates);
  let cost, acceptable = metrics params ~budget in
  let top, rest = Hlts_util.Listx.split_at params.k candidates in
  (* Evaluate the top-k in score order, keeping each pair with its
     outcome so the post-hoc verdicts know who was scored and why the
     losers lost. [min_by] is first-wins, so the winner is the lowest
     rank among equal costs — same rule as before the journal. *)
  let outcomes =
    List.map (fun pair -> (pair, attempt state ~bits:params.bits pair)) top
  in
  let best_of_top =
    List.mapi (fun i (_, o) -> (i, o)) outcomes
    |> List.filter_map (fun (i, o) ->
           match o with
           | Some o when acceptable o -> Some (i, o)
           | Some _ | None -> None)
    |> Hlts_util.Listx.min_by (fun (_, o) -> cost o)
  in
  let slims =
    List.map (fun (pair, o) -> (pair, Option.map slim_of_outcome o)) outcomes
  in
  match best_of_top with
  | Some (wi, best) ->
    journal_verdicts params ~budget slims ~winner:(Some wi);
    let c = cost best in
    journal_committed best ~reason:(top_reason params (wi + 1)) ~cost:c;
    Some (best, c)
  | None ->
    journal_verdicts params ~budget slims ~winner:None;
    let widened = ref 0 in
    let scanned = ref [] in
    let rec widen = function
      | [] -> None
      | pair :: rest -> begin
        incr widened;
        let o = attempt state ~bits:params.bits pair in
        scanned := (pair, Option.map slim_of_outcome o) :: !scanned;
        match o with
        | Some o when acceptable o -> Some (o, cost o)
        | Some _ | None -> widen rest
      end
    in
    let found = widen rest in
    Obs.set sp "widened" (Obs.Int !widened);
    if !widened > 0 then Obs.count ~by:!widened "synth.scans_widened";
    let slims_w = List.rev !scanned in
    (match found with
    | Some (o, c) ->
      journal_verdicts params ~budget slims_w ~winner:(Some (!widened - 1));
      journal_committed o ~reason:(widened_reason !widened) ~cost:c;
      Some (o, c)
    | None ->
      journal_verdicts params ~budget slims_w ~winner:None;
      None)

(* --- pooled candidate evaluation ---------------------------------------- *)

(* Worker protocol: [W_state] (a broadcast) re-bases the worker on the
   committed design after each iteration; [W_try] attempts a slice of
   candidate mergers, in order, against that base. Everything on the
   wire is closure-free plain data. Replies are deliberately slim —
   only the deltas and schedule length the commit rule reads — because
   shipping the full post-merge constraint set back for every
   speculative attempt costs more in (de)marshalling than the attempt
   itself; the parent re-executes just the one winning attempt locally
   to obtain the committed state. Slicing several candidates into one
   task amortizes the per-message framing and syscalls (the dominant
   coordinator cost once replies are slim); each attempt still ships
   its own counter tally so the parent can replay exactly the attempts
   a sequential scan would have made. *)
type wtask =
  | W_state of
      Hlts_sched.Constraints.t
      * Hlts_sched.Schedule.t
      * Hlts_alloc.Binding.t
      * int (* execution time of the committed state *)
      * float (* its floorplanned area at [params.bits] *)
  | W_try of Candidates.pair list

(* Per attempt: (delta_e, delta_h, post-merge schedule length) — [None]
   = infeasible — plus, on shared-heap transports only, the full
   outcome by reference (a forked worker strips it: the outcome's state
   holds closures and lazies no Marshal frame can carry, and shipping
   it serialized is the very cost the slim triples exist to avoid), and
   the counters the attempt emitted in the worker. *)
type wreply =
  ((int * float * int) option * Merge.outcome option * Pool.tally) list

(* The pooled mirror of [step]. The top-k attempts run concurrently;
   the widening scan evaluates [parallelism * k] candidates
   speculatively per chunk and commits the first acceptable one in
   score order. Chunks scale with {!Pool.parallelism}, not [jobs]:
   speculation is only free when spare hardware absorbs it, and when
   the pool executes its lanes sequentially (the domains backend's
   inline mode on one core) a chunk of one makes the scan evaluate
   exactly what the serial scan would — measured on the 1-core box,
   jobs-sized chunks wasted ~0.5 GB of allocation per run on feasible
   mergers the scan never read. Cost and acceptability are computed
   from the shipped deltas with the same float expressions as
   [metrics], so the winner is the one the sequential scan would pick.
   The winning outcome is taken by reference from the reply when the
   transport shares the heap (the worker already built it; its
   evaluation is deterministic, so it {e is} the object the parent
   would construct), and re-executed parent-side under fork, where the
   reply could not carry it. Worker tallies are replayed into the
   parent's sinks only for the attempts the sequential scan would have
   made (the whole top-k, and the widened prefix up to the winner); the
   winner's own counters come from its replayed tally (zero-copy) or
   from the parent's re-execution (fork) — identical streams, at the
   same position — and later speculation is discarded and accounted as
   [synth.pool.speculative_waste]. *)
let pool_step params ~budget ~sp ~pool ~iteration state =
  let candidates = score_candidates params ~sp state in
  journal_iter_begin ~iteration ~pool:(List.length candidates);
  let cost, _acceptable = metrics params ~budget in
  let cost_d, acceptable_d = metrics_d params ~budget in
  (* Re-execute the winning attempt in the parent: same state, same
     pair, same code path — the outcome (and its counter emissions)
     are exactly what the sequential scan would have produced. *)
  let materialize pair =
    match attempt state ~bits:params.bits pair with
    | Some o -> o
    | None ->
      invalid_arg "Synth.pool_step: worker and parent disagree on feasibility"
  in
  (* The winning attempt's outcome: by reference from the reply when
     the transport shipped it (replaying its tally — the emissions the
     parent's re-execution would have made), rebuilt locally when it
     could not (fork). *)
  let claim_outcome pair o_opt tally =
    match o_opt with
    | Some o ->
      Pool.replay tally;
      o
    | None -> materialize pair
  in
  (* Evaluate [pairs] as contiguous slices of at most [slice] candidates
     per task, all in flight at once; flattening the slice replies in
     submission order restores the original score order. *)
  let eval_batch ~slice pairs =
    let rec slices = function
      | [] -> []
      | ps ->
        let s, rest = Hlts_util.Listx.split_at slice ps in
        s :: slices rest
    in
    let tickets =
      List.map (fun s -> (s, Pool.submit pool (W_try s))) (slices pairs)
    in
    List.concat_map
      (fun (s, t) ->
        let (replies : wreply), task_tally = Pool.await pool t in
        (* Only the samples: the task-level tally carries the pool's own
           task_seconds probe (metrics-only, order-independent). Counts
           and decisions stay with the per-attempt tallies below so the
           replayed journal is exactly the sequential scan's. *)
        Pool.replay
          { task_tally with Pool.counts = []; gauges = []; decisions = [] };
        List.map2
          (fun pair (slim, o_opt, tally) -> (pair, slim, o_opt, tally))
          s replies)
      tickets
  in
  let top, rest = Hlts_util.Listx.split_at params.k candidates in
  let winner_of_top, top_slims, best_of_top =
    (* one candidate per task: the top-k are few and spread widest *)
    let replies = eval_batch ~slice:1 top in
    let acceptable_replies =
      List.mapi (fun i (_, slim, _, _) -> (i, slim)) replies
      |> List.filter_map (fun (i, slim) ->
             match slim with
             | Some d when acceptable_d d -> Some (i, d)
             | Some _ | None -> None)
    in
    let winner =
      Hlts_util.Listx.min_by (fun (_, d) -> cost_d d) acceptable_replies
    in
    let outcome = ref None in
    List.iteri
      (fun i (pair, _, o_opt, tally) ->
        match winner with
        | Some (wi, _) when wi = i ->
          outcome := Some (claim_outcome pair o_opt tally)
        | Some _ | None -> Pool.replay tally)
      replies;
    ( Option.map fst winner,
      List.map (fun (pair, slim, _, _) -> (pair, slim)) replies,
      !outcome )
  in
  match best_of_top with
  | Some o ->
    journal_verdicts params ~budget top_slims ~winner:winner_of_top;
    let c = cost o in
    let rank = 1 + Option.value ~default:0 winner_of_top in
    journal_committed o ~reason:(top_reason params rank) ~cost:c;
    Some (o, c)
  | None ->
    journal_verdicts params ~budget top_slims ~winner:None;
    (* Speculation width follows the hardware, not the lane count: a
       sequential pool (parallelism 1) widens one candidate at a time,
       exactly like the serial scan. *)
    let par = max 1 (Pool.parallelism pool) in
    let widen_slice = if par = 1 then 1 else params.k in
    let chunk_size = if par = 1 then 1 else max 1 (par * params.k) in
    let widened = ref 0 in
    let scanned = ref [] in
    let rec widen_chunks rest =
      match rest with
      | [] -> None
      | _ -> begin
        let chunk, rest' = Hlts_util.Listx.split_at chunk_size rest in
        let replies = eval_batch ~slice:widen_slice chunk in
        let rec scan = function
          | [] -> None
          | (pair, slim, o_opt, tally) :: tl -> begin
            incr widened;
            scanned := (pair, slim) :: !scanned;
            match slim with
            | Some d when acceptable_d d ->
              let o = claim_outcome pair o_opt tally in
              let waste = List.length tl in
              if waste > 0 then
                Obs.count ~by:waste "synth.pool.speculative_waste";
              Some (o, cost o)
            | Some _ | None ->
              Pool.replay tally;
              scan tl
          end
        in
        match scan replies with
        | Some found -> Some found
        | None -> widen_chunks rest'
      end
    in
    let found = widen_chunks rest in
    Obs.set sp "widened" (Obs.Int !widened);
    if !widened > 0 then Obs.count ~by:!widened "synth.scans_widened";
    let slims_w = List.rev !scanned in
    (match found with
    | Some (o, c) ->
      journal_verdicts params ~budget slims_w ~winner:(Some (!widened - 1));
      journal_committed o ~reason:(widened_reason !widened) ~cost:c;
      Some (o, c)
    | None ->
      journal_verdicts params ~budget slims_w ~winner:None;
      None)

let run ?(params = default_params) ?jobs ?backend dfg =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  Obs.span ~cat:"synth" ~res:true "synth.run" @@ fun run_sp ->
  let critical_path = Hlts_dfg.Dfg.longest_chain dfg in
  let budget =
    if params.latency_factor = infinity then max_int
    else
      int_of_float (ceil (params.latency_factor *. float_of_int critical_path))
  in
  let reg_unit = Hlts_floorplan.Module_library.reg_area ~bits:params.bits in
  let state0 = State.init dfg in
  let loop ~step_fn ~on_commit =
    let rec loop state records iteration =
      if iteration >= params.max_iterations then (state, records, iteration)
      else
        let stepped =
          (* One span per Algorithm-1 iteration. A committed merge carries
             accepted/dE/dH/cost args; the terminating scan (no acceptable
             merger anywhere) carries only pool/widened. *)
          Obs.span ~cat:"merge" "synth.iteration" (fun sp ->
              Obs.set sp "iteration" (Obs.Int iteration);
              match step_fn ~sp ~iteration state with
              | None -> None
              | Some (outcome, cost) ->
                Obs.set sp "accepted" (Obs.Str outcome.Merge.description);
                Obs.set sp "dE" (Obs.Int outcome.Merge.delta_e);
                Obs.set sp "dH_mm2" (Obs.Float outcome.Merge.delta_h);
                Obs.set sp "dH_units"
                  (Obs.Float (outcome.Merge.delta_h /. reg_unit));
                Obs.set sp "cost" (Obs.Float cost);
                Obs.count "synth.commits";
                Some (outcome, cost))
        in
        match stepped with
        | None -> (state, records, iteration)
        | Some (outcome, cost) ->
          let state' = outcome.Merge.state in
          let seq_depth = Testability.seq_depth_total (State.analysis state') in
          let record =
            {
              iteration;
              description = outcome.Merge.description;
              delta_e = outcome.Merge.delta_e;
              delta_h = outcome.Merge.delta_h;
              cost;
              seq_depth;
            }
          in
          if Obs.enabled () then
            Obs.journal
              (Obs.Journal.Testability_snapshot
                 {
                   seq_depth;
                   registers =
                     List.length state'.State.binding.Hlts_alloc.Binding.registers;
                   units = List.length state'.State.binding.Hlts_alloc.Binding.fus;
                   sched_len = Hlts_sched.Schedule.length state'.State.schedule;
                   area_mm2 = State.area state' ~bits:params.bits;
                 });
          (* One resource reading per committed merger: cheap enough at
             commit granularity and exactly the cadence the heartbeat
             and memory panel want. Gauges only — never digested. *)
          Obs.Res.emit ();
          on_commit state';
          loop state' (record :: records) (iteration + 1)
    in
    loop state0 [] 0
  in
  let final, records, iterations =
    (* Serial fallback only when parallelism is impossible or nobody
       asked for a specific backend; an explicit [?backend] or
       [HLTS_BACKEND] request is handed to [Pool.create] so that an
       unavailable backend fails loudly instead of silently running
       serial. *)
    if
      jobs > 1
      && (not (Pool.in_worker ()))
      && (backend <> None
         || Sys.getenv_opt "HLTS_BACKEND" <> None
         || Pool.backend_available (Pool.default_backend ()))
    then begin
      (* Force the initial state's derived views before the workers
         start so they share them already-evaluated — copy-on-write
         under fork, and race-free under domains: forcing the shared
         lazies here happens-before every Domain.spawn, so workers only
         ever read them forced (no counters are emitted by the forcing,
         so observability is unchanged). *)
      ignore (State.execution_time state0);
      ignore (State.area state0 ~bits:params.bits);
      (* One base-state slot per sharing group, not per lane and not a
         single shared ref: a [W_state]-built state carries
         unsynchronized lazy caches, so it must never be visible to two
         concurrent workers — but lanes in the same group run
         sequentially, so they can share one copy. Under fork each lane
         is its own group (the child copy-on-writes the whole array
         anyway); under domains the lanes served by one domain share a
         single re-based state, which also means its closure/memo
         caches warm once per domain per iteration instead of once per
         lane. *)
      let worker_states = Array.make jobs state0 in
      (* Each attempt is evaluated under its own capture sink so its
         counters travel back individually: the parent replays only the
         attempts the sequential scan would have made, at slice
         granularity that split would otherwise be lost. In an
         uninstrumented run the pool installs no capture sink in the
         worker, [Obs.enabled ()] is false here, and the per-attempt
         capture is skipped entirely — every attempt shares one empty
         tally, which also keeps the fork transport's reply frames
         slim. *)
      let empty_tally =
        { Pool.counts = []; samples = []; gauges = []; decisions = [] }
      in
      (* On shared-heap transports the full outcome rides the reply by
         reference — the parent commits the worker's object instead of
         re-evaluating the winner; a forked worker must strip it (the
         reply is marshalled). *)
      let keep o = if Pool.in_forked_worker () then None else Some o in
      let try_one base pair =
        if not (Obs.enabled ()) then (
          match attempt base ~bits:params.bits pair with
          | None -> (None, None, empty_tally)
          | Some o -> (Some (slim_of_outcome o), keep o, empty_tally))
        else
        let counts = ref [] and samples = ref [] and gauges = ref [] in
        let decisions = ref [] in
        let capture =
          {
            Obs.emit =
              (function
                | Obs.Count { name; delta; _ } ->
                  counts := (name, delta) :: !counts
                | Obs.Sample { name; v; _ } ->
                  samples := (name, v) :: !samples
                | Obs.Gauge { name; v; _ } ->
                  gauges := (name, v) :: !gauges
                | Obs.Decision { d; _ } -> decisions := d :: !decisions
                | _ -> ());
            flush = ignore;
          }
        in
        let slim, o_opt =
          Obs.with_sink capture (fun () ->
              match attempt base ~bits:params.bits pair with
              | None -> (None, None)
              | Some o -> (Some (slim_of_outcome o), keep o))
        in
        ( slim,
          o_opt,
          {
            Pool.counts = List.rev !counts;
            samples = List.rev !samples;
            gauges = List.rev !gauges;
            decisions = List.rev !decisions;
          } )
      in
      let wf : wtask -> wreply = function
        | W_state (cons, schedule, binding, etime, area) ->
          (* The scalar views every attempt reads off the base state
             come seeded over the wire: without them each worker would
             rebuild the committed design's ETPN once per iteration
             just to recompute two numbers the parent already has. *)
          worker_states.(Pool.worker_group ()) <-
            State.make ~etime
              ~area:[ (params.bits, area) ]
              ~dfg ~cons ~schedule ~binding ();
          []
        | W_try pairs ->
          let base = worker_states.(Pool.worker_group ()) in
          List.map (try_one base) pairs
      in
      Pool.with_pool ~name:"synth.pool" ?backend ~jobs wf @@ fun pool ->
      loop
        ~step_fn:(fun ~sp ~iteration state ->
          pool_step params ~budget ~sp ~pool ~iteration state)
        ~on_commit:(fun s' ->
          Pool.broadcast pool
            (W_state
               ( s'.State.cons,
                 s'.State.schedule,
                 s'.State.binding,
                 State.execution_time s',
                 State.area s' ~bits:params.bits )))
    end
    else
      loop
        ~step_fn:(fun ~sp ~iteration state ->
          step params ~budget ~sp ~iteration state)
        ~on_commit:ignore
  in
  Obs.set run_sp "iterations" (Obs.Int iterations);
  { final; records = List.rev records; iterations }
