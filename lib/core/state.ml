module Dfg = Hlts_dfg.Dfg
module Constraints = Hlts_sched.Constraints
module Schedule = Hlts_sched.Schedule
module Basic = Hlts_sched.Basic
module Binding = Hlts_alloc.Binding
module Etpn = Hlts_etpn.Etpn

(* Derived views of a state (the ETPN, its critical path E and the
   floorplanned area H) are pure functions of (dfg, schedule, binding),
   so each state computes them at most once: the ETPN and E are lazy,
   the area is memoized per bit width (an assoc list — callers rarely
   query more than one or two widths per state, but interleaving widths
   must not thrash the memo). The caches are created by [make] and thus
   invalidated simply by [with_constraints]/[with_binding] building a
   fresh state. During one Algorithm-1 iteration every merge attempt
   re-reads the *pre-merge* state's E and H — with the memo they are
   computed once per iteration instead of once per attempt. *)
type caches = {
  etpn_c : Etpn.t Lazy.t;
  etime_c : int Lazy.t;
  analysis_c : Hlts_testability.Testability.t Lazy.t;
  mutable area_c : (int * float) list;  (* bits -> mm2, every width seen *)
}

type t = {
  dfg : Dfg.t;
  cons : Constraints.t;
  schedule : Schedule.t;
  binding : Binding.t;
  caches : caches;
}

let make ?etime ?(area = []) ~dfg ~cons ~schedule ~binding () =
  let etpn_c = lazy (Etpn.build_exn dfg schedule binding) in
  let etime_c =
    match etime with
    | Some e -> Lazy.from_val e
    | None -> lazy (Etpn.execution_time (Lazy.force etpn_c))
  in
  let analysis_c =
    lazy (Hlts_testability.Testability.analyze (Lazy.force etpn_c))
  in
  {
    dfg;
    cons;
    schedule;
    binding;
    caches = { etpn_c; etime_c; analysis_c; area_c = area };
  }

let init dfg =
  let cons = Constraints.of_dfg dfg in
  make ~dfg ~cons ~schedule:(Basic.asap_exn cons)
    ~binding:(Binding.default dfg) ()

let etpn t = Lazy.force t.caches.etpn_c

let execution_time t = Lazy.force t.caches.etime_c

let analysis t = Lazy.force t.caches.analysis_c

let area t ~bits =
  match List.assoc_opt bits t.caches.area_c with
  | Some h -> h
  | None ->
    let h = Hlts_floorplan.Floorplan.area (etpn t) ~bits in
    t.caches.area_c <- (bits, h) :: t.caches.area_c;
    h

let with_constraints t cons =
  match Basic.asap cons with
  | Error _ -> None
  | Ok schedule ->
    Some (make ~dfg:t.dfg ~cons ~schedule ~binding:t.binding ())

let with_binding t binding =
  make ~dfg:t.dfg ~cons:t.cons ~schedule:t.schedule ~binding ()

let consistent t =
  Schedule.respects t.dfg t.schedule
  && List.for_all
       (fun (a, b) -> Schedule.step t.schedule a < Schedule.step t.schedule b)
       (Constraints.extra_arcs t.cons)
  && Result.is_ok (Binding.validate t.dfg t.schedule t.binding)
