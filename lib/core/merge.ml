module Dfg = Hlts_dfg.Dfg
module Op = Hlts_dfg.Op
module Constraints = Hlts_sched.Constraints
module Schedule = Hlts_sched.Schedule
module Basic = Hlts_sched.Basic
module Binding = Hlts_alloc.Binding
module Lifetime = Hlts_alloc.Lifetime

type outcome = {
  state : State.t;
  delta_e : int;
  delta_h : float;
  description : string;
}

(* SR2 trial metric: total register occupancy (sum of lifetime lengths)
   first — compact lifetimes enable the register mergers SR1 wants — then
   the critical-path length as the paper's fallback. The trial reschedule
   reuses the constraint set's shared adjacency/reachability index, and
   occupancy is a single pass ({!Lifetime.occupancy}); the schedule is
   returned alongside so [decide] can defer the critical-path fallback
   until occupancy alone fails to decide the comparison. *)
let order_metric dfg cons =
  Hlts_obs.count "sched.reschedule_attempts";
  match Basic.asap cons with
  | Error _ -> None
  | Ok sched -> Some (Lifetime.occupancy dfg sched, sched)

(* Chooses between first-[a] and first-[b] for two unordered items, given
   a function producing the trial constraint set for each order. Returns
   [`A], [`B], or [`Stuck] when neither order is feasible. Equivalent to
   comparing [(occupancy, length)] lexicographically with [<=], but the
   lengths are only computed on an occupancy tie. Sets [sr2] when the
   occupancy metric — the SR2 enhancement strategy proper — decided a
   head-to-head; forced orders and the critical-path fallback leave it,
   so a merger whose every choice was forced reports as plain SR1. *)
let decide ~sr2 dfg trial_a trial_b =
  let ma = Option.bind trial_a (order_metric dfg) in
  let mb = Option.bind trial_b (order_metric dfg) in
  match ma, mb with
  | None, None -> `Stuck
  | Some _, None -> `A
  | None, Some _ -> `B
  | Some (oa, sa), Some (ob, sb) ->
    if oa < ob then begin
      sr2 := true;
      `A
    end
    else if ob < oa then begin
      sr2 := true;
      `B
    end
    else if Schedule.length sa <= Schedule.length sb then `A
    else `B

(* --- module merger ----------------------------------------------------- *)

(* Appends [x] to the emitted chain: adds prev -> x unless already
   implied. *)
let chain_arc cons prev x =
  match prev with
  | None -> Some cons
  | Some p ->
    if Constraints.reachable cons p x then Some cons
    else if Constraints.would_cycle cons p x then None
    else Some (Constraints.add_arc cons p x)

let try_arc cons a b =
  if Constraints.reachable cons a b then Some cons
  else if Constraints.would_cycle cons a b then None
  else Some (Constraints.add_arc cons a b)

(* Merge-sorts two operation chains into one total order, accumulating
   chain arcs; the head-to-head decision is SR2. *)
let merge_op_chains ~sr2 dfg cons chain_a chain_b =
  let rec loop cons emitted prev xs ys =
    match xs, ys with
    | [], [] -> Some (cons, List.rev emitted)
    | x :: rest, [] | [], x :: rest -> begin
      match chain_arc cons prev x with
      | None -> None
      | Some cons -> loop cons (x :: emitted) (Some x) rest []
    end
    | a :: rest_a, b :: rest_b ->
      let fwd = Constraints.reachable cons a b in
      let bwd = Constraints.reachable cons b a in
      let take side =
        let x, xs', ys' =
          match side with
          | `A -> (a, rest_a, b :: rest_b)
          | `B -> (b, a :: rest_a, rest_b)
        in
        match chain_arc cons prev x with
        | None -> None
        | Some cons -> loop cons (x :: emitted) (Some x) xs' ys'
      in
      if fwd && bwd then None
      else if fwd then take `A
      else if bwd then take `B
      else begin
        let with_prev c x =
          match chain_arc c prev x with None -> None | Some c -> Some (c, x)
        in
        let trial first second =
          match with_prev cons first with
          | None -> None
          | Some (c, _) -> try_arc c first second
        in
        match decide ~sr2 dfg (trial a b) (trial b a) with
        | `Stuck -> None
        | (`A | `B) as side -> take side
      end
  in
  loop cons [] None chain_a chain_b

let renumber_fus fus = List.mapi (fun i fu -> { fu with Binding.fu_id = i }) fus

let renumber_regs regs =
  List.mapi (fun i r -> { r with Binding.reg_id = i }) regs

let commit state ~bits ~sr2 cons binding description =
  match State.with_constraints state cons with
  | None -> None
  | Some state' ->
    let state' = State.with_binding state' binding in
    if not (State.consistent state') then None
    else begin
      let delta_e = State.execution_time state' - State.execution_time state in
      let delta_h = State.area state' ~bits -. State.area state ~bits in
      if Hlts_obs.enabled () then
        Hlts_obs.journal
          (Hlts_obs.Journal.Reschedule
             {
               strategy = (if !sr2 then Hlts_obs.Journal.SR2 else Hlts_obs.Journal.SR1);
               moved_ops = Schedule.diff state.State.schedule state'.State.schedule;
             });
      Some { state = state'; delta_e; delta_h; description }
    end

let modules state ~bits fa fb =
  if fa = fb then None
  else begin
    let binding = state.State.binding in
    let fu_a = List.find (fun f -> f.Binding.fu_id = fa) binding.Binding.fus in
    let fu_b = List.find (fun f -> f.Binding.fu_id = fb) binding.Binding.fus in
    let kinds ops =
      List.map (fun id -> (Dfg.op_by_id state.State.dfg id).Dfg.kind) ops
    in
    match Op.shared_class (kinds (fu_a.Binding.fu_ops @ fu_b.Binding.fu_ops)) with
    | None -> None
    | Some cls ->
      let by_step ops =
        List.sort
          (fun x y ->
            compare (Schedule.step state.State.schedule x, x)
              (Schedule.step state.State.schedule y, y))
          ops
      in
      let chain_a = by_step fu_a.Binding.fu_ops in
      let chain_b = by_step fu_b.Binding.fu_ops in
      let sr2 = ref false in
      match merge_op_chains ~sr2 state.State.dfg state.State.cons chain_a chain_b with
      | None -> None
      | Some (cons, emitted) ->
        let merged = { Binding.fu_id = 0; fu_class = cls; fu_ops = emitted } in
        let others =
          List.filter
            (fun f -> f.Binding.fu_id <> fa && f.Binding.fu_id <> fb)
            binding.Binding.fus
        in
        let binding' =
          { binding with Binding.fus = renumber_fus (merged :: others) }
        in
        let description =
          Printf.sprintf "merge units %s{%s} + %s{%s}"
            (Op.class_name fu_a.Binding.fu_class)
            (String.concat "," (List.map (Printf.sprintf "N%d") fu_a.Binding.fu_ops))
            (Op.class_name fu_b.Binding.fu_class)
            (String.concat "," (List.map (Printf.sprintf "N%d") fu_b.Binding.fu_ops))
        in
        commit state ~bits ~sr2 cons binding' description
  end

(* --- register merger ---------------------------------------------------- *)

(* Constraint arcs forcing value [u] to expire before value [w] is
   created (§4.3.2). [None] if structurally impossible. *)
let expire_before dfg cons u w =
  if Dfg.is_output dfg u then None
  else begin
    let sources =
      match Dfg.uses_of_value dfg u with
      | [] -> (match u with Dfg.V_op id -> Some [ id ] | Dfg.V_input _ -> None)
      | uses -> Some uses
    in
    let targets =
      match w with
      | Dfg.V_op id -> Some [ id ]
      | Dfg.V_input _ -> (
        match Dfg.uses_of_value dfg w with
        | [] -> None (* unused input: load time is not constrainable *)
        | uses -> Some uses)
    in
    match sources, targets with
    | None, _ | _, None -> None
    | Some sources, Some targets ->
      let add cons_opt (s, t) =
        match cons_opt with
        | None -> None
        | Some cons -> try_arc cons s t
      in
      List.fold_left add (Some cons)
        (List.concat_map (fun s -> List.map (fun t -> (s, t)) targets) sources)
  end

let merge_value_chains ~sr2 dfg cons chain_a chain_b =
  let rec loop cons emitted prev xs ys =
    let emit cons x =
      match prev with
      | None -> Some cons
      | Some p -> expire_before dfg cons p x
    in
    match xs, ys with
    | [], [] -> Some (cons, List.rev emitted)
    | x :: rest, [] | [], x :: rest -> begin
      match emit cons x with
      | None -> None
      | Some cons -> loop cons (x :: emitted) (Some x) rest []
    end
    | a :: rest_a, b :: rest_b ->
      let take side =
        let x, xs', ys' =
          match side with
          | `A -> (a, rest_a, b :: rest_b)
          | `B -> (b, a :: rest_a, rest_b)
        in
        match emit cons x with
        | None -> None
        | Some cons -> loop cons (x :: emitted) (Some x) xs' ys'
      in
      let trial first second =
        match emit cons first with
        | None -> None
        | Some c -> expire_before dfg c first second
      in
      (match decide ~sr2 dfg (trial a b) (trial b a) with
      | `Stuck -> None
      | (`A | `B) as side -> take side)
  in
  loop cons [] None chain_a chain_b

let registers state ~bits ra rb =
  if ra = rb then None
  else begin
    let dfg = state.State.dfg in
    let binding = state.State.binding in
    let reg_a = List.find (fun r -> r.Binding.reg_id = ra) binding.Binding.registers in
    let reg_b = List.find (fun r -> r.Binding.reg_id = rb) binding.Binding.registers in
    let by_birth values =
      List.sort
        (fun u w ->
          compare
            (Lifetime.interval_of dfg state.State.schedule u).Lifetime.birth
            (Lifetime.interval_of dfg state.State.schedule w).Lifetime.birth)
        values
    in
    let chain_a = by_birth reg_a.Binding.reg_values in
    let chain_b = by_birth reg_b.Binding.reg_values in
    let sr2 = ref false in
    match merge_value_chains ~sr2 dfg state.State.cons chain_a chain_b with
    | None -> None
    | Some (cons, emitted) ->
      let merged = { Binding.reg_id = 0; reg_values = emitted } in
      let others =
        List.filter
          (fun r -> r.Binding.reg_id <> ra && r.Binding.reg_id <> rb)
          binding.Binding.registers
      in
      let binding' =
        { binding with Binding.registers = renumber_regs (merged :: others) }
      in
      let name v = Dfg.value_name dfg v in
      let description =
        Printf.sprintf "merge registers {%s} + {%s}"
          (String.concat "," (List.map name reg_a.Binding.reg_values))
          (String.concat "," (List.map name reg_b.Binding.reg_values))
      in
      commit state ~bits ~sr2 cons binding' description
  end
