module Etpn = Hlts_etpn.Etpn
module Testability = Hlts_testability.Testability

(* Expected benefit of observing register [r]: its observability deficit,
   weighted by its controllability — a register that can be driven but
   not observed is the ideal tap. *)
let benefit m =
  (1.0 -. m.Testability.co) *. (0.3 +. m.Testability.cc)

let recommend state ~k =
  let t = State.analysis state in
  let ranked =
    List.sort
      (fun (_, m1) (_, m2) -> compare (benefit m2) (benefit m1))
      (Testability.register_measures t)
  in
  Hlts_util.Listx.take k (List.map fst ranked)

let insert state reg_ids =
  List.fold_left
    (fun etpn reg_id -> Etpn.add_observation_point etpn ~reg_id)
    (State.etpn state) reg_ids
