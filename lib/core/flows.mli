(** The four synthesis flows compared in the paper's evaluation.

    - [Camad]: the CAMAD high-level synthesis system without testability
      consideration — the same iterative merger engine driven by the
      conventional connectivity/closeness criterion.
    - [Approach1]: force-directed scheduling (no testability
      consideration) followed by Lee's allocation (I/O-anchored left-edge
      registers, greedy module binding).
    - [Approach2]: Lee's mobility-path scheduling followed by the same
      allocation.
    - [Ours]: Algorithm 1 — integrated scheduling and allocation under the
      controllability/observability balance principle. *)

type approach =
  | Camad
  | Approach1
  | Approach2
  | Ours

val approach_name : approach -> string
val approach_of_string : string -> approach option

type outcome = {
  approach : approach;
  state : State.t;
  etpn : Hlts_etpn.Etpn.t;
  records : Synth.record list;  (** empty for the separate-step flows *)
}

val synthesize :
  ?params:Synth.params -> ?jobs:int -> ?backend:Hlts_pool.Pool.backend ->
  approach -> Hlts_dfg.Dfg.t -> outcome
(** [params] applies to the iterative flows ([Ours], [Camad]); the
    separate-step flows schedule at the critical-path latency. [jobs]
    (also only meaningful for the iterative flows) evaluates merge
    candidates on that many pooled workers on [backend] (default:
    [Pool.default_backend ()]) — see {!Synth.run}; the outcome is
    bit-identical to the serial run on either backend.
    @raise Invalid_argument if a separate-step flow fails to schedule
    (cannot happen on an acyclic DFG). *)
