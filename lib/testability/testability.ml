module Etpn = Hlts_etpn.Etpn
module Binding = Hlts_alloc.Binding
module Op = Hlts_dfg.Op

type measures = {
  cc : float;
  sc : float;
  co : float;
  so : float;
}

type t = {
  etpn : Etpn.t;
  out_cc : (int, float) Hashtbl.t;  (* controllability of a node's output *)
  out_sc : (int, float) Hashtbl.t;
  node_co : (int, float) Hashtbl.t; (* observability of a node's content *)
  node_so : (int, float) Hashtbl.t;
}

(* Combinational transfer factors: how much controllability survives a
   pass through a unit of the given operation. Multiplication is the
   hardest structure to control and observe through; comparisons compress
   n bits to 1. *)
let ctf = function
  | Op.Add | Op.Sub -> 0.95
  | Op.Mul -> 0.65
  | Op.Lt | Op.Gt | Op.Le | Op.Ge | Op.Eq | Op.Ne -> 0.55
  | Op.And | Op.Or -> 0.80
  | Op.Xor -> 0.95

let otf = function
  | Op.Add | Op.Sub -> 0.95
  | Op.Mul -> 0.60
  | Op.Lt | Op.Gt | Op.Le | Op.Ge | Op.Eq | Op.Ne -> 0.45
  | Op.And | Op.Or -> 0.75
  | Op.Xor -> 0.95

(* A shared unit is as hard to drive values through as its hardest
   operation class. *)
let class_kind = function
  | Op.Fu_adder -> Op.Add
  | Op.Fu_subtractor -> Op.Sub
  | Op.Fu_multiplier -> Op.Mul
  | Op.Fu_comparator -> Op.Lt
  | Op.Fu_logic -> Op.And
  | Op.Fu_alu -> Op.Add

let fu_ctf fu = ctf (class_kind fu.Binding.fu_class)
let fu_otf fu = otf (class_kind fu.Binding.fu_class)

let register_factor = 0.98
let const_cc = 0.15
let cond_co = 0.85
let big = infinity

let analyze etpn =
  Hlts_obs.span ~cat:"testability" "testability.analyze" @@ fun sp ->
  Hlts_obs.set sp "nodes" (Hlts_obs.Int (List.length etpn.Etpn.nodes));
  Hlts_obs.count "testability.analyses";
  let out_cc = Hashtbl.create 64 and out_sc = Hashtbl.create 64 in
  let node_co = Hashtbl.create 64 and node_so = Hashtbl.create 64 in
  List.iter
    (fun (id, n) ->
      let cc0, sc0 =
        match n with
        | Etpn.Port_in _ -> (1.0, 0.0)
        | Etpn.Const _ -> (const_cc, 0.0)
        | Etpn.Port_out _ | Etpn.Cond_out _ | Etpn.Reg _ | Etpn.Fu _ ->
          (0.0, big)
      in
      let co0, so0 =
        match n with
        | Etpn.Port_out _ -> (1.0, 0.0)
        | Etpn.Cond_out _ -> (cond_co, 0.0)
        | Etpn.Port_in _ | Etpn.Const _ | Etpn.Reg _ | Etpn.Fu _ -> (0.0, big)
      in
      Hashtbl.replace out_cc id cc0;
      Hashtbl.replace out_sc id sc0;
      Hashtbl.replace node_co id co0;
      Hashtbl.replace node_so id so0)
    etpn.Etpn.nodes;
  let cc_of id = Hashtbl.find out_cc id in
  let sc_of id = Hashtbl.find out_sc id in
  let co_of id = Hashtbl.find node_co id in
  let so_of id = Hashtbl.find node_so id in
  let port_cc srcs = List.fold_left (fun acc s -> max acc (cc_of s)) 0.0 srcs in
  let port_sc srcs = List.fold_left (fun acc s -> min acc (sc_of s)) big srcs in
  let fu_port_sources id p =
    List.filter_map
      (fun a -> if a.Etpn.a_port = Some p then Some a.Etpn.a_src else None)
      (Etpn.in_arcs etpn id)
  in
  let sources id = List.map (fun a -> a.Etpn.a_src) (Etpn.in_arcs etpn id) in

  (* ---- forward relaxation: CC up, SC down, until stable ---- *)
  let forward_once () =
    let changed = ref false in
    let update id cc sc =
      if cc > cc_of id +. 1e-12 then begin
        Hashtbl.replace out_cc id cc;
        changed := true
      end;
      if sc < sc_of id -. 1e-12 then begin
        Hashtbl.replace out_sc id sc;
        changed := true
      end
    in
    List.iter
      (fun (id, n) ->
        match n with
        | Etpn.Reg _ ->
          let srcs = sources id in
          if srcs <> [] then
            update id (register_factor *. port_cc srcs) (1.0 +. port_sc srcs)
        | Etpn.Fu fu ->
          let left = fu_port_sources id Etpn.P_left in
          let right = fu_port_sources id Etpn.P_right in
          if left <> [] && right <> [] then
            update id
              (fu_ctf fu *. min (port_cc left) (port_cc right))
              (max (port_sc left) (port_sc right))
        | Etpn.Cond_out _ | Etpn.Port_out _ ->
          let srcs = sources id in
          if srcs <> [] then update id (port_cc srcs) (port_sc srcs)
        | Etpn.Port_in _ | Etpn.Const _ -> ())
      etpn.Etpn.nodes;
    !changed
  in

  (* ---- backward relaxation: CO up, SO down ----
     The observability a node gains through one of its outgoing arcs
     depends on the destination: a register delays by one step; a
     functional-unit input is observable if the unit output is and the
     opposite port can be controlled. *)
  let arc_obs a =
    let dst = a.Etpn.a_dst in
    match Etpn.node etpn dst with
    | Etpn.Port_out _ -> (1.0, 0.0)
    | Etpn.Cond_out _ -> (cond_co, 0.0)
    | Etpn.Reg _ -> (register_factor *. co_of dst, 1.0 +. so_of dst)
    | Etpn.Fu fu ->
      let other_port =
        match a.Etpn.a_port with
        | Some Etpn.P_left -> Some Etpn.P_right
        | Some Etpn.P_right -> Some Etpn.P_left
        | None -> None
      in
      (match other_port with
      | None -> (0.0, big)
      | Some p ->
        (* observing through the unit needs the opposite port controlled:
           CO is discounted by its controllability, SO pays its
           sequential set-up cost *)
        let other = fu_port_sources dst p in
        let co = fu_otf fu *. co_of dst *. port_cc other in
        (co, so_of dst +. port_sc other))
    | Etpn.Port_in _ | Etpn.Const _ -> (0.0, big)
  in
  let backward_once () =
    let changed = ref false in
    let update id co so =
      if co > co_of id +. 1e-12 then begin
        Hashtbl.replace node_co id co;
        changed := true
      end;
      if so < so_of id -. 1e-12 then begin
        Hashtbl.replace node_so id so;
        changed := true
      end
    in
    List.iter
      (fun (id, n) ->
        match n with
        | Etpn.Port_out _ | Etpn.Cond_out _ -> ()
        | Etpn.Port_in _ | Etpn.Const _ | Etpn.Reg _ | Etpn.Fu _ ->
          let arcs = Etpn.out_arcs etpn id in
          if arcs <> [] then begin
            let co =
              List.fold_left (fun acc a -> max acc (fst (arc_obs a))) 0.0 arcs
            in
            let so =
              List.fold_left (fun acc a -> min acc (snd (arc_obs a))) big arcs
            in
            update id co so
          end)
      etpn.Etpn.nodes;
    !changed
  in
  let rec run pass budget =
    if budget > 0 && pass () then run pass (budget - 1)
  in
  let rounds = 4 * List.length etpn.Etpn.nodes + 16 in
  run forward_once rounds;
  run backward_once rounds;
  { etpn; out_cc; out_sc; node_co; node_so }

let etpn t = t.etpn

let node_measures t id =
  (* Node controllability: the best controllability of any input line
     (§3 of the paper); sources' output measures are the line measures.
     Source-less nodes use their own output measures. *)
  let in_srcs = List.map (fun a -> a.Etpn.a_src) (Etpn.in_arcs t.etpn id) in
  let cc, sc =
    match in_srcs with
    | [] -> (Hashtbl.find t.out_cc id, Hashtbl.find t.out_sc id)
    | srcs ->
      ( List.fold_left (fun acc s -> max acc (Hashtbl.find t.out_cc s)) 0.0 srcs,
        List.fold_left (fun acc s -> min acc (Hashtbl.find t.out_sc s)) big srcs
      )
  in
  { cc; sc; co = Hashtbl.find t.node_co id; so = Hashtbl.find t.node_so id }

let by_kind t keep =
  List.filter_map
    (fun (id, n) ->
      match keep n with
      | Some key -> Some (key, node_measures t id)
      | None -> None)
    t.etpn.Etpn.nodes

let register_measures t =
  by_kind t (function
    | Etpn.Reg r -> Some r.Binding.reg_id
    | Etpn.Fu _ | Etpn.Port_in _ | Etpn.Port_out _ | Etpn.Cond_out _
    | Etpn.Const _ -> None)

let fu_measures t =
  by_kind t (function
    | Etpn.Fu fu -> Some fu.Binding.fu_id
    | Etpn.Reg _ | Etpn.Port_in _ | Etpn.Port_out _ | Etpn.Cond_out _
    | Etpn.Const _ -> None)

let clamp_seq x n = if x = big || x > float_of_int (4 * n) then float_of_int (4 * n) else x

let seq_depth_total t =
  let regs = register_measures t in
  let n = max 1 (List.length regs) in
  Hlts_util.Listx.sum_by
    (fun (_, m) -> clamp_seq m.sc n +. clamp_seq m.so n)
    regs

let balance_score t u v =
  let mu = node_measures t u and mv = node_measures t v in
  let merged = min (max mu.cc mv.cc) (max mu.co mv.co) in
  let before = (min mu.cc mu.co +. min mv.cc mv.co) /. 2.0 in
  merged -. before

let testability_cost t =
  let all = List.map (fun (id, _) -> node_measures t id) t.etpn.Etpn.nodes in
  let n = max 1 (List.length all) in
  Hlts_util.Listx.sum_by
    (fun m ->
      (1.0 -. m.cc) +. (1.0 -. m.co)
      +. (0.05 *. (clamp_seq m.sc n +. clamp_seq m.so n)))
    all

let pp_measures ppf m =
  Format.fprintf ppf "CC=%.3f SC=%s CO=%.3f SO=%s" m.cc
    (if m.sc = big then "inf" else Printf.sprintf "%.1f" m.sc)
    m.co
    (if m.so = big then "inf" else Printf.sprintf "%.1f" m.so)
