(** Domain-local storage behind a version-neutral face.

    The observability globals (the installed sink list, the live span
    depth) must be per-domain on OCaml 5: a worker domain installing its
    capture sink must not make [enabled ()] flip true in every other
    domain, and concurrent spans must not interleave their depth
    counters. On 4.14 there is exactly one domain, so a plain [ref] is
    the whole implementation.

    Selected at build time by dune copy rules: [tls_dls.ml]
    (Domain.DLS) on OCaml >= 5.0, [tls_ref.ml] (plain ref) below. The
    [get] path must stay allocation-free and a few nanoseconds at most:
    it sits under every [Obs.enabled ()] check, which the no-sink
    overhead budget test holds under 1 us/call. *)

type 'a t

val make : (unit -> 'a) -> 'a t
(** [make init] allocates a slot; [init] runs once per domain on first
    access (immediately, on 4.14). [init] must not raise. *)

val get : 'a t -> 'a
val set : 'a t -> 'a -> unit
