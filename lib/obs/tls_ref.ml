(* OCaml < 5.0: single-domain runtime, a ref is domain-local by
   definition. Copied to tls.ml by the dune rule in this directory. *)

type 'a t = 'a ref

let make init = ref (init ())
let get = ( ! )
let set r v = r := v
