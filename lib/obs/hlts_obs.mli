(** Observability substrate for the synthesis pipeline: hierarchical
    timed spans, named counters/gauges/histograms and pluggable sinks.

    The library is *passive by default*: with no sink installed every
    entry point degenerates to a single list-emptiness check, no clock
    is read and no allocation happens, so instrumented hot paths cost
    nothing and synthesis results are byte-identical with and without
    instrumentation. Event *content* (names, categories, argument
    values, ordering) is deterministic for a fixed seed; only the
    timestamp fields vary between runs, so traces diff cleanly.

    Three sinks ship with the library:

    - {!Summary} — in-memory aggregation (per-span totals and self
      time, counter sums, sample statistics) with a per-phase
      wall-clock breakdown whose phase times sum to the total;
    - {!jsonl_sink} — one JSON object per event, one event per line;
    - {!chrome_sink} — Chrome [trace_event] format, loadable in
      [chrome://tracing] and Perfetto. *)

(** Monotonic wall clock. Every [seconds] field reported anywhere in
    the system (ATPG, BIST, bench [elapsed], profile breakdowns) is
    derived from this one clock, so times are comparable across
    subsystems and immune to wall-clock adjustments. *)
module Clock : sig
  val now_ns : unit -> int64
  (** Monotonic timestamp in nanoseconds. Only differences are
      meaningful. *)

  val seconds_since : int64 -> float
  (** [seconds_since t0] is the elapsed wall time since the
      {!now_ns} reading [t0], in seconds. *)
end

(** Minimal JSON tree: emission (used by the sinks) and parsing (used
    by the tests to check well-formedness by round-trip). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering; strings are escaped per RFC 8259, non-finite
      floats become [null]. *)

  val of_string : string -> (t, string) result
  (** Strict parser for the subset {!to_string} emits (which is plain
      JSON); rejects trailing garbage. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)
end

(** Typed decision journal: the *what* and *why* of an Algorithm-1 run,
    as opposed to the *how long* the spans record. Events are emitted by
    {!Hlts_synth.Synth} (iteration boundaries, candidate verdicts,
    commits), {!Hlts_synth.Merge} (SR1/SR2 rescheduling) and replayed
    across the worker-pool boundary exactly like counters, so the
    journal is byte-identical at every [-j N].

    Only plain data here — journal events must marshal across the pool
    wire — and no timestamps: a journal event is deterministic content
    by construction; the {!journal_sink} stamps a sequence number, never
    a clock reading. *)
module Journal : sig
  (** A candidate merge pair: two functional-unit ids or two register
      ids (mirrors [Candidates.pair], which lives above this library). *)
  type pair =
    | Units of int * int
    | Registers of int * int

  (** Which enhancement strategy resolved the merge-sort rescheduling:
      [SR2] when a head-to-head order was decided by the occupancy
      metric (the order that lets SR1 reduce sequential depth), [SR1]
      when only forced orders and the critical-path fallback applied. *)
  type strategy =
    | SR1
    | SR2

  (** Why a candidate was not committed. [Infeasible]: the merger has no
      acyclic rescheduling. [Over_budget]: feasible, but the schedule
      exceeds the latency budget. [Not_improving]: within budget, but
      [alpha*dE + beta*dH >= 0] under [Cost_improving]. [Not_selected]:
      acceptable, but a cheaper candidate won the iteration. *)
  type reject =
    | Infeasible
    | Over_budget
    | Not_improving
    | Not_selected

  type event =
    | Iter_begin of { iteration : int; pool : int }
        (** [pool] = size of the score-ordered candidate list. *)
    | Candidate_scored of {
        pair : pair;
        delta_e : int;       (** control steps *)
        delta_h : float;     (** mm2 *)
        sched_len : int;     (** post-merge schedule length *)
      }
    | Candidate_rejected of { pair : pair; reason : reject }
    | Merge_committed of {
        description : string;
        reason : string;     (** e.g. "cheapest acceptable of top-3 (rank 2)" *)
        delta_e : int;
        delta_h : float;
        cost : float;
      }
    | Reschedule of {
        strategy : strategy;
        moved_ops : (int * int * int) list;
            (** [(op, old step, new step)] for every op the merger's
                constraints moved, ascending by op id. *)
      }
    | Testability_snapshot of {
        seq_depth : float;
        registers : int;
        units : int;
        sched_len : int;
        area_mm2 : float;
      }  (** design-quality snapshot after each committed merger *)

  val encode : event -> Json.t
  (** Canonical JSON object: an ["ev"] kind tag plus the payload fields.
      Field values are deterministic (floats render shortest-round-trip),
      so byte-comparing encodings compares events exactly. *)

  val decode : Json.t -> (event, string) result
  (** Inverse of {!encode} (ignores an extra ["j"] sequence field). *)

  val is_decision_line : string -> bool
  (** True for canonical journal lines (as written by {!journal_sink} —
      they start with [{"j":]); false for the interleaved timing lines.
      The determinism contract covers exactly the lines this accepts. *)
end

(** Argument values attached to spans and instant events. *)
type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

(** One completed span as captured inside a pool worker, shipped back
    with the reply and re-stamped into the parent's sinks as a
    {!Worker_span}. Timestamps are {!Clock} readings — the monotonic
    clock is system-wide, so worker and parent timestamps share one
    timeline and need no translation. *)
type span_rec = {
  w_name : string;
  w_cat : string;
  w_ts_ns : int64;   (** end timestamp, as [Span_end] *)
  w_dur_ns : int64;
  w_depth : int;
  w_args : (string * value) list;
}

(** The event stream delivered to sinks. Timestamps are {!Clock}
    readings; [depth] is the span-nesting depth (0 = root). *)
type event =
  | Span_begin of { name : string; cat : string; ts_ns : int64; depth : int }
  | Span_end of {
      name : string;
      cat : string;
      ts_ns : int64;
      dur_ns : int64;
      depth : int;
      args : (string * value) list;
    }
  | Count of { name : string; delta : int; ts_ns : int64 }
  | Gauge of { name : string; v : float; ts_ns : int64 }
  | Sample of { name : string; v : float; ts_ns : int64 }
  | Instant of {
      name : string;
      cat : string;
      args : (string * value) list;
      ts_ns : int64;
    }
  | Decision of { d : Journal.event; ts_ns : int64 }
      (** A decision-journal event (see {!Journal}). [ts_ns] is when the
          emitting process recorded it; canonical journal output ignores
          it. *)
  | Worker_span of { worker : int; ticket : int; span : span_rec }
      (** A span completed inside pool worker [worker] while serving
          [ticket], re-stamped into the parent's sinks by the pool
          pump. *)

type sink = {
  emit : event -> unit;
  flush : unit -> unit;  (** complete any buffered output; idempotent *)
}

val enabled : unit -> bool
(** [true] iff at least one sink is installed. *)

val add_sink : sink -> unit

val remove_sink : sink -> unit
(** Removes a previously added sink (by physical equality). *)

val clear_sinks : unit -> unit

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f] installs [s], runs [f], then flushes and removes
    [s] — exception-safe. *)

val in_fresh_context : sink list -> (unit -> 'a) -> 'a
(** [in_fresh_context ss f] runs [f] with the caller's sinks replaced
    by [ss] and the span depth restarted at zero — the observability
    environment a freshly spawned worker domain sees — restoring both
    on the way out, exception or not. Lets a pool execute tasks inline
    on the caller's domain with worker-identical capture semantics. *)

type span
(** A live span handle, used to attach arguments. When no sink is
    installed a shared dummy handle is passed and {!set} is a no-op. *)

val span : ?cat:string -> ?res:bool -> string -> (span -> 'a) -> 'a
(** [span ~cat name f] times [f] with the monotonic clock and reports
    a [Span_begin]/[Span_end] pair around it (exception-safe). [cat]
    is the phase the span accounts to in per-phase breakdowns
    ("testability", "candidates", "merge", "reschedule", "atpg", ...).

    With [~res:true] the span additionally snapshots the GC before and
    after [f] and attaches allocation deltas to the closing event
    ([gc_minor_words], [gc_major_words], [gc_minor_collections],
    [gc_major_collections]), after any user-set arguments. Reserve it
    for coarse spans (whole runs, whole phases): the extra
    [Gc.quick_stat] is cheap but not free. *)

val set : span -> string -> value -> unit
(** Attach an argument to the running span; arguments are reported in
    insertion order on the [Span_end] event. *)

val count : ?by:int -> string -> unit
(** Increment a named counter (default 1). *)

val gauge : string -> float -> unit
(** Record the current value of a named gauge. *)

val sample : string -> float -> unit
(** Add an observation to a named histogram. *)

val instant : ?cat:string -> ?args:(string * value) list -> string -> unit
(** A point event. *)

val journal : Journal.event -> unit
(** Report a decision-journal event (as {!Decision}) to the installed
    sinks. Free when no sink is installed, like every other entry
    point. *)

val worker_span : worker:int -> ticket:int -> span_rec -> unit
(** Re-stamp a span captured inside a pool worker into the parent's
    sinks (as {!Worker_span}). Called by the pool pump as replies are
    parsed. *)

(** Process-resource sampler: GC statistics ([Gc.quick_stat]), user/sys
    CPU time ([Unix.times]) and resident-set size (current and peak,
    from [/proc/self/status]; reported as 0 where procfs is
    unavailable).

    Resource readings are host-dependent by nature, so they are kept
    out of every determinism contract: they are only ever reported as
    gauges under the reserved ["res."] name prefix, which trajectory
    and journal digests exclude and the pool merges by max. *)
module Res : sig
  type snapshot = {
    utime_s : float;          (** user CPU seconds *)
    stime_s : float;          (** system CPU seconds *)
    rss_kb : int;             (** current resident set, kB (VmRSS) *)
    max_rss_kb : int;         (** peak resident set, kB (VmHWM) *)
    minor_words : float;
    promoted_words : float;
    major_words : float;
    minor_collections : int;
    major_collections : int;
    heap_words : int;         (** major-heap size, words *)
  }

  val snapshot : unit -> snapshot
  (** Read the current process's resources. Cheap (one [quick_stat],
      one [times], one procfs scan); suitable per commit, not per
      candidate. *)

  val delta : snapshot -> snapshot -> snapshot
  (** [delta a b]: monotone fields (CPU, GC words/collections) are
      [b - a]; point-in-time fields (rss, peak rss, heap size) are
      [b]'s. *)

  val gauges : snapshot -> (string * float) list
  (** Render as ["res."]-prefixed gauge pairs ([res.utime_s],
      [res.rss_kb], [res.gc.minor_words], ...). *)

  val emit : unit -> unit
  (** Snapshot and report every gauge from {!gauges} to the installed
      sinks. Free when no sink is installed. *)
end

(** In-memory aggregation sink. Self time of a span is its duration
    minus the durations of its direct children, so summing self time
    over all spans (grouped by category) reproduces the total observed
    wall time exactly — the per-phase breakdown always adds up. *)
module Summary : sig
  type t

  type span_stat = {
    spans : int;        (** number of completed spans *)
    total_ns : int64;   (** inclusive wall time *)
    self_ns : int64;    (** exclusive wall time *)
    max_ns : int64;     (** longest single span *)
  }

  type sample_stat = {
    n : int;
    sum : float;
    min_v : float;
    max_v : float;
  }

  val create : unit -> t

  val sink : t -> sink

  val phases : t -> (string * float) list
  (** Per-category self time in seconds, in first-seen order. *)

  val total_seconds : t -> float
  (** Total observed wall time = sum of {!phases}. *)

  val span_stats : t -> ((string * string) * span_stat) list
  (** Keyed by [(category, name)], first-seen order. *)

  val counters : t -> (string * int) list
  (** Counter sums, first-seen order. *)

  val counter : t -> string -> int
  (** A single counter's sum; 0 if never incremented. *)

  val gauges : t -> (string * float) list
  (** Last recorded value per gauge. *)

  val samples : t -> (string * sample_stat) list

  val histograms : t -> (string * int array) list
  (** Bucketed counts for latency samples only — those whose name ends
      in ["seconds"] — keyed like {!samples}, first-seen order. Each
      array holds per-bucket (non-cumulative) counts against
      {!Metrics.latency_buckets}, plus one final overflow slot for
      observations above the last bucket. *)

  val pp : Format.formatter -> t -> unit
  (** Human-readable report: per-phase breakdown (self time and
      share), per-span table, counters, gauges and histograms. *)
end

(** Prometheus text-exposition rendering of a {!Summary}, plus a
    minimal reader used to check round-trips. This is the scrape
    surface a future [hlts serve] will expose over a socket; today it
    is written to a file by [--metrics]. *)
module Metrics : sig
  val metric_name : string -> string
  (** Sanitize an event name into a valid Prometheus metric name:
      characters outside [[a-zA-Z0-9_:]] map to ['_'] and a leading
      digit is prefixed with ['_']. *)

  val latency_buckets : float array
  (** The fixed bucket ladder (upper bounds, seconds) every latency
      histogram uses: 0.5 ms up to 30 s, Prometheus-style. Part of the
      exposition contract — dashboards may hard-code it. *)

  val expose : ?res:bool -> Summary.t -> string
  (** Render the summary in Prometheus text exposition format (with
      [# HELP]/[# TYPE] headers): counters as [hlts_<name>_total]
      counters, gauges as [hlts_<name>] gauges, samples as summaries
      ([quantile="0"]/[quantile="1"] extremes plus [_sum]/[_count]) and
      per-phase self time as [hlts_phase_self_seconds{phase="..."}].
      Latency samples — names ending in ["seconds"] — render instead as
      proper histograms: cumulative [hlts_<name>_bucket{le="..."}]
      lines over {!latency_buckets}, a [le="+Inf"] line, then
      [_sum]/[_count]. When [res] is true (default) a fresh
      {!Res.snapshot} is appended as gauges and any recorded ["res.*"]
      gauges in the summary are dropped in its favour. *)

  type sample = {
    m_name : string;
    m_labels : (string * string) list;
    m_value : float;
  }
  (** One exposition sample line: name, label pairs, value. *)

  val parse : string -> (sample list, string) result
  (** Parse text in the exposition format: comment ([#]) and blank
      lines are skipped, every other line must be
      [name[{label="value",...}] value [timestamp]]. Returns samples in
      file order. *)
end

val jsonl_sink : (string -> unit) -> sink
(** [jsonl_sink write] renders each event as one JSON object per line
    through [write]. Line shapes: [{"ev":"begin"|"end"|"count"|
    "gauge"|"sample"|"instant"|"decision"|"wspan", "name":..., ...}]
    with timestamps in microseconds. *)

val journal_sink : (string -> unit) -> sink
(** [journal_sink write] is the canonical decision-journal sink: each
    {!Decision} becomes one line [{"j":<seq>, "ev":<kind>, ...}] where
    [seq] is a 0-based decision counter and the payload carries *no*
    timestamps — these lines are byte-identical at every [-j N]
    ({!Journal.is_decision_line} recognizes them). All other events are
    written too, in the {!jsonl_sink} shapes (with timestamps), so one
    file carries both the deterministic decision record and the timing
    context; consumers split the two with [is_decision_line]. *)

val heartbeat_sink : ?interval_ms:int -> (string -> unit) -> sink
(** [heartbeat_sink ~interval_ms write] appends one JSON snapshot line
    through [write] at most every [interval_ms] milliseconds (default
    100; 0 = on every event), aggregating events into an internal
    {!Summary}. Each line is a single [write] call of the form
    [{"hb":<seq>, "t_s":<elapsed>, "res":{...}, "counters":{...},
    "gauges":{...}}] so a concurrent reader ([hlts top]) never sees a
    torn line; ["res.*"] gauges are folded into the ["res"] object. The
    first event always produces a snapshot, and [flush] writes a last
    one flagged ["final":true], which tailing readers use to stop. *)

val chrome_sink : (string -> unit) -> sink
(** [chrome_sink write] buffers Chrome [trace_event] records and emits
    a complete [{"traceEvents":[...]}] document on [flush]. Spans
    become ["X"] (complete) events, counters/gauges ["C"] events and
    instants ["i"] events; timestamps are microseconds relative to
    sink creation. The parent process renders as pid 1; each
    {!Worker_span} renders on pid [2 + worker] with a ["process_name"]
    metadata record, so pool workers appear as separate lanes.
    {!Decision} events render as instants in the ["journal"]
    category. *)

(** Request-scoped trace context, propagated through the [hlts serve]
    wire protocol: a 128-bit trace id plus a 64-bit span id (both
    lower-case hex) and a sampling flag. The client generates a context
    per request (or accepts one from its caller), the daemon echoes it
    in the reply together with the spans the request produced, and the
    client merges its own spans with the shipped ones into a single
    Chrome trace — client wait, daemon work and pool-worker lanes on
    one timeline.

    Everything here is telemetry, never content: trace ids come from a
    private splitmix64 stream (not {!Hlts_util.Rng}), request digests
    ignore the envelope's ["trace"] field, and journals are
    byte-identical with tracing on or off. *)
module Trace_ctx : sig
  type t = {
    trace_id : string;  (** 32 hex chars *)
    span_id : string;   (** 16 hex chars *)
    sampled : bool;     (** false = propagate ids but capture no spans *)
  }

  val generate : ?sampled:bool -> unit -> t
  (** Fresh random context ([sampled] defaults to [true]). Unique per
      call; deliberately not reproducible from any seed. *)

  val child : t -> t
  (** Same trace id, fresh span id — the context to hand to a
      downstream hop. *)

  val to_json : t -> Json.t
  (** [{"id":<32 hex>, "span":<16 hex>, "sampled":bool}]. *)

  val of_json : Json.t -> t option
  (** Inverse of {!to_json}; [None] on malformed ids. A missing
      ["sampled"] defaults to [true]. *)

  val of_envelope : Json.t -> t option
  (** Read the optional ["trace"] field of a request envelope. [None]
      when absent or malformed — frames from clients that predate
      tracing parse exactly as before. *)

  (** One completed span on some lane of the merged trace. Lanes:
      0 = client, 1 = daemon, [2 + w] = pool worker [w]. Timestamps are
      {!Clock} readings (end-of-span, like {!span_rec}) — meaningful
      across processes on one host, rebased by {!chrome_trace}. *)
  type span = {
    sp_lane : int;
    sp_label : string;  (** lane display name, e.g. ["daemon"] *)
    sp_name : string;
    sp_cat : string;
    sp_ts_ns : int64;
    sp_dur_ns : int64;
    sp_args : (string * value) list;
  }

  val span_to_json : span -> Json.t
  val span_of_json : Json.t -> span option
  (** Wire codec for shipped spans; [span_of_json] drops non-scalar
      argument values and returns [None] on missing fields. *)

  val collector : lane:int -> label:string -> unit -> sink * (unit -> span list)
  (** [collector ~lane ~label ()] is a sink that records the process's
      own [Span_end] events as lane [lane] spans and pool
      [Worker_span] events as lane [lane + 1 + worker] spans, plus a
      function returning everything captured so far in completion
      order. *)

  val chrome_trace : ?meta:(string * Json.t) list -> span list -> Json.t
  (** Render spans (any mix of lanes) as one complete Chrome
      [trace_event] document: per-lane ["process_name"] metadata, ["X"]
      records with microsecond timestamps rebased to the earliest span
      start. [meta] fields are appended to the top-level object. *)
end
