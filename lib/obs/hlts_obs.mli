(** Observability substrate for the synthesis pipeline: hierarchical
    timed spans, named counters/gauges/histograms and pluggable sinks.

    The library is *passive by default*: with no sink installed every
    entry point degenerates to a single list-emptiness check, no clock
    is read and no allocation happens, so instrumented hot paths cost
    nothing and synthesis results are byte-identical with and without
    instrumentation. Event *content* (names, categories, argument
    values, ordering) is deterministic for a fixed seed; only the
    timestamp fields vary between runs, so traces diff cleanly.

    Three sinks ship with the library:

    - {!Summary} — in-memory aggregation (per-span totals and self
      time, counter sums, sample statistics) with a per-phase
      wall-clock breakdown whose phase times sum to the total;
    - {!jsonl_sink} — one JSON object per event, one event per line;
    - {!chrome_sink} — Chrome [trace_event] format, loadable in
      [chrome://tracing] and Perfetto. *)

(** Monotonic wall clock. Every [seconds] field reported anywhere in
    the system (ATPG, BIST, bench [elapsed], profile breakdowns) is
    derived from this one clock, so times are comparable across
    subsystems and immune to wall-clock adjustments. *)
module Clock : sig
  val now_ns : unit -> int64
  (** Monotonic timestamp in nanoseconds. Only differences are
      meaningful. *)

  val seconds_since : int64 -> float
  (** [seconds_since t0] is the elapsed wall time since the
      {!now_ns} reading [t0], in seconds. *)
end

(** Minimal JSON tree: emission (used by the sinks) and parsing (used
    by the tests to check well-formedness by round-trip). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact rendering; strings are escaped per RFC 8259, non-finite
      floats become [null]. *)

  val of_string : string -> (t, string) result
  (** Strict parser for the subset {!to_string} emits (which is plain
      JSON); rejects trailing garbage. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)
end

(** Argument values attached to spans and instant events. *)
type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

(** The event stream delivered to sinks. Timestamps are {!Clock}
    readings; [depth] is the span-nesting depth (0 = root). *)
type event =
  | Span_begin of { name : string; cat : string; ts_ns : int64; depth : int }
  | Span_end of {
      name : string;
      cat : string;
      ts_ns : int64;
      dur_ns : int64;
      depth : int;
      args : (string * value) list;
    }
  | Count of { name : string; delta : int; ts_ns : int64 }
  | Gauge of { name : string; v : float; ts_ns : int64 }
  | Sample of { name : string; v : float; ts_ns : int64 }
  | Instant of {
      name : string;
      cat : string;
      args : (string * value) list;
      ts_ns : int64;
    }

type sink = {
  emit : event -> unit;
  flush : unit -> unit;  (** complete any buffered output; idempotent *)
}

val enabled : unit -> bool
(** [true] iff at least one sink is installed. *)

val add_sink : sink -> unit

val remove_sink : sink -> unit
(** Removes a previously added sink (by physical equality). *)

val clear_sinks : unit -> unit

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f] installs [s], runs [f], then flushes and removes
    [s] — exception-safe. *)

type span
(** A live span handle, used to attach arguments. When no sink is
    installed a shared dummy handle is passed and {!set} is a no-op. *)

val span : ?cat:string -> string -> (span -> 'a) -> 'a
(** [span ~cat name f] times [f] with the monotonic clock and reports
    a [Span_begin]/[Span_end] pair around it (exception-safe). [cat]
    is the phase the span accounts to in per-phase breakdowns
    ("testability", "candidates", "merge", "reschedule", "atpg", ...). *)

val set : span -> string -> value -> unit
(** Attach an argument to the running span; arguments are reported in
    insertion order on the [Span_end] event. *)

val count : ?by:int -> string -> unit
(** Increment a named counter (default 1). *)

val gauge : string -> float -> unit
(** Record the current value of a named gauge. *)

val sample : string -> float -> unit
(** Add an observation to a named histogram. *)

val instant : ?cat:string -> ?args:(string * value) list -> string -> unit
(** A point event. *)

(** In-memory aggregation sink. Self time of a span is its duration
    minus the durations of its direct children, so summing self time
    over all spans (grouped by category) reproduces the total observed
    wall time exactly — the per-phase breakdown always adds up. *)
module Summary : sig
  type t

  type span_stat = {
    spans : int;        (** number of completed spans *)
    total_ns : int64;   (** inclusive wall time *)
    self_ns : int64;    (** exclusive wall time *)
    max_ns : int64;     (** longest single span *)
  }

  type sample_stat = {
    n : int;
    sum : float;
    min_v : float;
    max_v : float;
  }

  val create : unit -> t

  val sink : t -> sink

  val phases : t -> (string * float) list
  (** Per-category self time in seconds, in first-seen order. *)

  val total_seconds : t -> float
  (** Total observed wall time = sum of {!phases}. *)

  val span_stats : t -> ((string * string) * span_stat) list
  (** Keyed by [(category, name)], first-seen order. *)

  val counters : t -> (string * int) list
  (** Counter sums, first-seen order. *)

  val counter : t -> string -> int
  (** A single counter's sum; 0 if never incremented. *)

  val gauges : t -> (string * float) list
  (** Last recorded value per gauge. *)

  val samples : t -> (string * sample_stat) list

  val pp : Format.formatter -> t -> unit
  (** Human-readable report: per-phase breakdown (self time and
      share), per-span table, counters, gauges and histograms. *)
end

val jsonl_sink : (string -> unit) -> sink
(** [jsonl_sink write] renders each event as one JSON object per line
    through [write]. Line shapes: [{"ev":"begin"|"end"|"count"|
    "gauge"|"sample"|"instant", "name":..., ...}] with timestamps in
    microseconds. *)

val chrome_sink : (string -> unit) -> sink
(** [chrome_sink write] buffers Chrome [trace_event] records and emits
    a complete [{"traceEvents":[...]}] document on [flush]. Spans
    become ["X"] (complete) events, counters/gauges ["C"] events and
    instants ["i"] events; timestamps are microseconds relative to
    sink creation. *)
