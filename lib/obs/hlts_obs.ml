module Clock = struct
  (* CLOCK_MONOTONIC via the bechamel stubs already in the build
     environment; Sys.time (CPU time) and Unix.gettimeofday (settable)
     are both wrong for profiling. *)
  let now_ns () = Monotonic_clock.now ()
  let seconds_since t0 = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9
end

(* Shortest decimal rendering that round-trips the float exactly, so
   encodings are canonical and byte-comparable. Shared by the JSON
   emitter and the Prometheus exposition. *)
let float_repr f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s
  else begin
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15 else Printf.sprintf "%.17g" f
  end

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> begin
      match Float.classify_float f with
      | FP_nan | FP_infinite -> Buffer.add_string buf "null"
      | FP_normal | FP_subnormal | FP_zero -> Buffer.add_string buf (float_repr f)
    end
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        l;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    emit buf v;
    Buffer.contents buf

  exception Parse of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail fmt =
      Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "%s at %d" m !pos))) fmt
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail "expected %c" c
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail "bad literal"
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
            advance ();
            (if !pos >= n then fail "bad escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                 advance ();
                 if !pos + 4 > n then fail "bad \\u escape";
                 let code = int_of_string ("0x" ^ String.sub s !pos 4) in
                 pos := !pos + 4;
                 (* BMP code points as UTF-8; enough for anything the
                    emitter produces *)
                 if code < 0x80 then Buffer.add_char buf (Char.chr code)
                 else if code < 0x800 then begin
                   Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
                 else begin
                   Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                   Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                   Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                 end
               | c -> fail "bad escape \\%c" c);
            loop ()
          | c -> Buffer.add_char buf c; advance (); loop ()
      in
      loop ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do advance () done;
      let lit = String.sub s start (!pos - start) in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') lit then
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail "bad number %s" lit
      else
        match int_of_string_opt lit with
        | Some i -> Int i
        | None -> fail "bad number %s" lit
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end"
      | Some '"' -> Str (parse_string ())
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields (f :: acc)
            | Some '}' -> advance (); Obj (List.rev (f :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
        end
      | Some c -> if is_start_of_number c then parse_number () else fail "unexpected %c" c
    and is_start_of_number c =
      match c with '0' .. '9' | '-' -> true | _ -> false
    in
    match parse_value () with
    | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at %d" !pos)
      else Ok v
    | exception Parse msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None
end

module Journal = struct
  type pair =
    | Units of int * int
    | Registers of int * int

  type strategy =
    | SR1
    | SR2

  type reject =
    | Infeasible
    | Over_budget
    | Not_improving
    | Not_selected

  type event =
    | Iter_begin of { iteration : int; pool : int }
    | Candidate_scored of {
        pair : pair;
        delta_e : int;
        delta_h : float;
        sched_len : int;
      }
    | Candidate_rejected of { pair : pair; reason : reject }
    | Merge_committed of {
        description : string;
        reason : string;
        delta_e : int;
        delta_h : float;
        cost : float;
      }
    | Reschedule of { strategy : strategy; moved_ops : (int * int * int) list }
    | Testability_snapshot of {
        seq_depth : float;
        registers : int;
        units : int;
        sched_len : int;
        area_mm2 : float;
      }

  let json_of_pair = function
    | Units (a, b) ->
      Json.Obj [ ("kind", Json.Str "units"); ("a", Json.Int a); ("b", Json.Int b) ]
    | Registers (a, b) ->
      Json.Obj
        [ ("kind", Json.Str "registers"); ("a", Json.Int a); ("b", Json.Int b) ]

  let string_of_reject = function
    | Infeasible -> "infeasible"
    | Over_budget -> "over_budget"
    | Not_improving -> "not_improving"
    | Not_selected -> "not_selected"

  let string_of_strategy = function
    | SR1 -> "SR1"
    | SR2 -> "SR2"

  let encode = function
    | Iter_begin { iteration; pool } ->
      Json.Obj
        [
          ("ev", Json.Str "iter_begin"); ("iteration", Json.Int iteration);
          ("pool", Json.Int pool);
        ]
    | Candidate_scored { pair; delta_e; delta_h; sched_len } ->
      Json.Obj
        [
          ("ev", Json.Str "candidate_scored"); ("pair", json_of_pair pair);
          ("delta_e", Json.Int delta_e); ("delta_h", Json.Float delta_h);
          ("sched_len", Json.Int sched_len);
        ]
    | Candidate_rejected { pair; reason } ->
      Json.Obj
        [
          ("ev", Json.Str "candidate_rejected"); ("pair", json_of_pair pair);
          ("reason", Json.Str (string_of_reject reason));
        ]
    | Merge_committed { description; reason; delta_e; delta_h; cost } ->
      Json.Obj
        [
          ("ev", Json.Str "merge_committed");
          ("description", Json.Str description); ("reason", Json.Str reason);
          ("delta_e", Json.Int delta_e); ("delta_h", Json.Float delta_h);
          ("cost", Json.Float cost);
        ]
    | Reschedule { strategy; moved_ops } ->
      Json.Obj
        [
          ("ev", Json.Str "reschedule");
          ("strategy", Json.Str (string_of_strategy strategy));
          ( "moved",
            Json.List
              (List.map
                 (fun (op, from_, to_) ->
                   Json.List [ Json.Int op; Json.Int from_; Json.Int to_ ])
                 moved_ops) );
        ]
    | Testability_snapshot { seq_depth; registers; units; sched_len; area_mm2 }
      ->
      Json.Obj
        [
          ("ev", Json.Str "testability_snapshot");
          ("seq_depth", Json.Float seq_depth);
          ("registers", Json.Int registers); ("units", Json.Int units);
          ("sched_len", Json.Int sched_len); ("area_mm2", Json.Float area_mm2);
        ]

  let ( let* ) = Result.bind

  let field name j =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)

  let int_field name j =
    let* v = field name j in
    match v with
    | Json.Int i -> Ok i
    | _ -> Error (Printf.sprintf "field %S: expected int" name)

  (* %g drops the ".0" of integral floats, so the parser hands them back
     as Int — coerce. *)
  let float_field name j =
    let* v = field name j in
    match v with
    | Json.Float f -> Ok f
    | Json.Int i -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "field %S: expected number" name)

  let str_field name j =
    let* v = field name j in
    match v with
    | Json.Str s -> Ok s
    | _ -> Error (Printf.sprintf "field %S: expected string" name)

  let pair_field name j =
    let* p = field name j in
    let* kind = str_field "kind" p in
    let* a = int_field "a" p in
    let* b = int_field "b" p in
    match kind with
    | "units" -> Ok (Units (a, b))
    | "registers" -> Ok (Registers (a, b))
    | k -> Error (Printf.sprintf "unknown pair kind %S" k)

  let reject_of_string = function
    | "infeasible" -> Ok Infeasible
    | "over_budget" -> Ok Over_budget
    | "not_improving" -> Ok Not_improving
    | "not_selected" -> Ok Not_selected
    | s -> Error (Printf.sprintf "unknown reject reason %S" s)

  let moved_of_json = function
    | Json.List rows ->
      List.fold_left
        (fun acc row ->
          let* acc = acc in
          match row with
          | Json.List [ Json.Int op; Json.Int from_; Json.Int to_ ] ->
            Ok ((op, from_, to_) :: acc)
          | _ -> Error "bad moved-op row")
        (Ok []) rows
      |> Result.map List.rev
    | _ -> Error "field \"moved\": expected list"

  let decode j =
    let* ev = str_field "ev" j in
    match ev with
    | "iter_begin" ->
      let* iteration = int_field "iteration" j in
      let* pool = int_field "pool" j in
      Ok (Iter_begin { iteration; pool })
    | "candidate_scored" ->
      let* pair = pair_field "pair" j in
      let* delta_e = int_field "delta_e" j in
      let* delta_h = float_field "delta_h" j in
      let* sched_len = int_field "sched_len" j in
      Ok (Candidate_scored { pair; delta_e; delta_h; sched_len })
    | "candidate_rejected" ->
      let* pair = pair_field "pair" j in
      let* reason = str_field "reason" j in
      let* reason = reject_of_string reason in
      Ok (Candidate_rejected { pair; reason })
    | "merge_committed" ->
      let* description = str_field "description" j in
      let* reason = str_field "reason" j in
      let* delta_e = int_field "delta_e" j in
      let* delta_h = float_field "delta_h" j in
      let* cost = float_field "cost" j in
      Ok (Merge_committed { description; reason; delta_e; delta_h; cost })
    | "reschedule" ->
      let* strategy = str_field "strategy" j in
      let* strategy =
        match strategy with
        | "SR1" -> Ok SR1
        | "SR2" -> Ok SR2
        | s -> Error (Printf.sprintf "unknown strategy %S" s)
      in
      let* moved = field "moved" j in
      let* moved_ops = moved_of_json moved in
      Ok (Reschedule { strategy; moved_ops })
    | "testability_snapshot" ->
      let* seq_depth = float_field "seq_depth" j in
      let* registers = int_field "registers" j in
      let* units = int_field "units" j in
      let* sched_len = int_field "sched_len" j in
      let* area_mm2 = float_field "area_mm2" j in
      Ok (Testability_snapshot { seq_depth; registers; units; sched_len; area_mm2 })
    | k -> Error (Printf.sprintf "unknown journal event %S" k)

  let is_decision_line line =
    String.length line >= 5 && String.sub line 0 5 = "{\"j\":"
end

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type span_rec = {
  w_name : string;
  w_cat : string;
  w_ts_ns : int64;
  w_dur_ns : int64;
  w_depth : int;
  w_args : (string * value) list;
}

type event =
  | Span_begin of { name : string; cat : string; ts_ns : int64; depth : int }
  | Span_end of {
      name : string;
      cat : string;
      ts_ns : int64;
      dur_ns : int64;
      depth : int;
      args : (string * value) list;
    }
  | Count of { name : string; delta : int; ts_ns : int64 }
  | Gauge of { name : string; v : float; ts_ns : int64 }
  | Sample of { name : string; v : float; ts_ns : int64 }
  | Instant of {
      name : string;
      cat : string;
      args : (string * value) list;
      ts_ns : int64;
    }
  | Decision of { d : Journal.event; ts_ns : int64 }
  | Worker_span of { worker : int; ticket : int; span : span_rec }

type sink = { emit : event -> unit; flush : unit -> unit }

(* Both of these are domain-local (Tls is Domain.DLS on OCaml 5): a
   worker domain installing its tally-capture sink must not flip
   [enabled ()] in sibling domains, and concurrent spans must not share
   a depth counter. On 4.14 Tls degenerates to a plain ref. *)
let sinks : sink list Tls.t = Tls.make (fun () -> [])
let depth : int Tls.t = Tls.make (fun () -> 0)

let enabled () = Tls.get sinks <> []
let add_sink s = Tls.set sinks (Tls.get sinks @ [ s ])
let remove_sink s = Tls.set sinks (List.filter (fun s' -> s' != s) (Tls.get sinks))
let clear_sinks () = Tls.set sinks []

let broadcast ev = List.iter (fun s -> s.emit ev) (Tls.get sinks)

let with_sink s f =
  add_sink s;
  Fun.protect
    ~finally:(fun () ->
      remove_sink s;
      s.flush ())
    f

(* Run [f] exactly as a freshly spawned worker would: the caller's sink
   list is replaced by [ss] and the span depth restarts at zero, both
   restored on the way out. The inline pool executor uses this to give
   tasks worker-identical observability (capture sink only, or none)
   while running on the caller's own domain. *)
let in_fresh_context ss f =
  let outer_sinks = Tls.get sinks and outer_depth = Tls.get depth in
  Tls.set sinks ss;
  Tls.set depth 0;
  Fun.protect
    ~finally:(fun () ->
      Tls.set sinks outer_sinks;
      Tls.set depth outer_depth)
    f

type span = { mutable args : (string * value) list; live : bool }

let dummy = { args = []; live = false }

let set sp key v = if sp.live then sp.args <- (key, v) :: sp.args

let span ?(cat = "") ?(res = false) name f =
  if not (enabled ()) then f dummy
  else begin
    (* When [res] is requested, snapshot the GC before the span body and
       attach allocation deltas to the closing event. Kept out of the
       default path: quick_stat is cheap but not free, and most spans
       are inner-loop. *)
    let g0 =
      (* Gc.counters, not quick_stat: the latter's word counts exclude
         the current domain's un-flushed minor buffer. *)
      if res then Some (Gc.counters (), Gc.quick_stat ()) else None
    in
    let t0 = Clock.now_ns () in
    let d = Tls.get depth in
    Tls.set depth (d + 1);
    broadcast (Span_begin { name; cat; ts_ns = t0; depth = d });
    let sp = { args = []; live = true } in
    Fun.protect
      ~finally:(fun () ->
        Tls.set depth d;
        let t1 = Clock.now_ns () in
        (match g0 with
        | None -> ()
        | Some ((minor0, _, major0), g0) ->
          let minor1, _, major1 = Gc.counters () in
          let g1 = Gc.quick_stat () in
          (* prepended so the deltas render after user-set args *)
          sp.args <-
            ("gc_major_collections", Int (g1.major_collections - g0.major_collections))
            :: ("gc_minor_collections", Int (g1.minor_collections - g0.minor_collections))
            :: ("gc_major_words", Float (major1 -. major0))
            :: ("gc_minor_words", Float (minor1 -. minor0))
            :: sp.args);
        broadcast
          (Span_end
             {
               name;
               cat;
               ts_ns = t1;
               dur_ns = Int64.sub t1 t0;
               depth = d;
               args = List.rev sp.args;
             }))
      (fun () -> f sp)
  end

let count ?(by = 1) name =
  if enabled () then broadcast (Count { name; delta = by; ts_ns = Clock.now_ns () })

let gauge name v =
  if enabled () then broadcast (Gauge { name; v; ts_ns = Clock.now_ns () })

let sample name v =
  if enabled () then broadcast (Sample { name; v; ts_ns = Clock.now_ns () })

let instant ?(cat = "") ?(args = []) name =
  if enabled () then broadcast (Instant { name; cat; args; ts_ns = Clock.now_ns () })

let journal d =
  if enabled () then broadcast (Decision { d; ts_ns = Clock.now_ns () })

let worker_span ~worker ~ticket span =
  if enabled () then broadcast (Worker_span { worker; ticket; span })

(* ---- process resource sampler ----------------------------------------- *)

module Res = struct
  type snapshot = {
    utime_s : float;
    stime_s : float;
    rss_kb : int;
    max_rss_kb : int;
    minor_words : float;
    promoted_words : float;
    major_words : float;
    minor_collections : int;
    major_collections : int;
    heap_words : int;
  }

  (* One pass over /proc/self/status for VmRSS (current) and VmHWM
     (peak); both reported by the kernel in kB. Returns (0, 0) where
     procfs is unavailable so callers never have to branch on the
     platform. *)
  let proc_rss_kb () =
    match open_in "/proc/self/status" with
    | exception Sys_error _ -> (0, 0)
    | ic ->
      let rss = ref 0 and hwm = ref 0 in
      let value_of line =
        (* "VmRSS:     123456 kB" — extract the digit run *)
        let v = ref 0 and seen = ref false in
        String.iter
          (fun c ->
            if c >= '0' && c <= '9' then begin
              seen := true;
              v := (!v * 10) + (Char.code c - Char.code '0')
            end)
          line;
        if !seen then !v else 0
      in
      (try
         while true do
           let line = input_line ic in
           if String.length line >= 6 && String.sub line 0 6 = "VmRSS:" then
             rss := value_of line
           else if String.length line >= 6 && String.sub line 0 6 = "VmHWM:" then
             hwm := value_of line
         done
       with End_of_file -> ());
      close_in_noerr ic;
      (!rss, !hwm)

  let snapshot () =
    let g = Gc.quick_stat () in
    (* quick_stat's word counters lag until the next minor collection
       flushes the current domain's buffer; Gc.counters reads the live
       allocation pointers and stays cheap. *)
    let minor_words, promoted_words, major_words = Gc.counters () in
    let tm = Unix.times () in
    let rss_kb, max_rss_kb = proc_rss_kb () in
    {
      utime_s = tm.Unix.tms_utime;
      stime_s = tm.Unix.tms_stime;
      rss_kb;
      max_rss_kb;
      minor_words;
      promoted_words;
      major_words;
      minor_collections = g.minor_collections;
      major_collections = g.major_collections;
      heap_words = g.heap_words;
    }

  (* Delta from [a] to [b]: monotone fields subtract; point-in-time
     fields (rss, peak rss, heap size) take [b]'s value. *)
  let delta a b =
    {
      utime_s = b.utime_s -. a.utime_s;
      stime_s = b.stime_s -. a.stime_s;
      rss_kb = b.rss_kb;
      max_rss_kb = b.max_rss_kb;
      minor_words = b.minor_words -. a.minor_words;
      promoted_words = b.promoted_words -. a.promoted_words;
      major_words = b.major_words -. a.major_words;
      minor_collections = b.minor_collections - a.minor_collections;
      major_collections = b.major_collections - a.major_collections;
      heap_words = b.heap_words;
    }

  (* The "res." prefix marks process-resource gauges: they are
     host-dependent by nature, so every digest/determinism gate excludes
     them (and the pool's counter-equality contract never sees them,
     gauges merge by max). *)
  let gauges s =
    [
      ("res.utime_s", s.utime_s);
      ("res.stime_s", s.stime_s);
      ("res.rss_kb", float_of_int s.rss_kb);
      ("res.max_rss_kb", float_of_int s.max_rss_kb);
      ("res.gc.minor_words", s.minor_words);
      ("res.gc.major_words", s.major_words);
      ("res.gc.heap_words", float_of_int s.heap_words);
      ("res.gc.minor_collections", float_of_int s.minor_collections);
      ("res.gc.major_collections", float_of_int s.major_collections);
    ]

  let emit () =
    if enabled () then List.iter (fun (n, v) -> gauge n v) (gauges (snapshot ()))
end

(* ---- shared rendering helpers ---------------------------------------- *)

let json_of_value = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let json_of_args args =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) args)

let us_of_ns ns = Int64.to_float ns /. 1000.0

(* ---- summary sink ----------------------------------------------------- *)

(* Fixed latency ladder shared by every "…seconds" sample: sub-ms cache
   hits at one end, multi-second cold synthesis runs at the other. The
   ladder is part of the exposition contract (DESIGN.md §7.1), so it is
   a constant, not a per-histogram choice. *)
let latency_buckets =
  [|
    0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0;
    2.5; 5.0; 10.0; 30.0;
  |]

(* Samples whose names end in "seconds" carry latencies and get
   fixed-bucket histogram treatment; everything else stays a summary. *)
let is_latency_name name =
  let suffix = "seconds" in
  let ln = String.length name and ls = String.length suffix in
  ln >= ls && String.sub name (ln - ls) ls = suffix

module Summary = struct
  type span_stat = {
    spans : int;
    total_ns : int64;
    self_ns : int64;
    max_ns : int64;
  }

  type sample_stat = { n : int; sum : float; min_v : float; max_v : float }

  type frame = { mutable child_ns : int64 }

  type t = {
    spans_tbl : (string * string, span_stat) Hashtbl.t;
    mutable span_order : (string * string) list;  (* reversed first-seen *)
    mutable stack : frame list;
    counters_tbl : (string, int) Hashtbl.t;
    mutable counter_order : string list;
    gauges_tbl : (string, float) Hashtbl.t;
    mutable gauge_order : string list;
    samples_tbl : (string, sample_stat) Hashtbl.t;
    mutable sample_order : string list;
    (* per-bucket (non-cumulative) counts for latency samples; the
       extra final slot counts observations above the last bucket *)
    hists_tbl : (string, int array) Hashtbl.t;
  }

  let create () =
    {
      spans_tbl = Hashtbl.create 32;
      span_order = [];
      stack = [];
      counters_tbl = Hashtbl.create 32;
      counter_order = [];
      gauges_tbl = Hashtbl.create 16;
      gauge_order = [];
      samples_tbl = Hashtbl.create 16;
      sample_order = [];
      hists_tbl = Hashtbl.create 8;
    }

  let emit t = function
    | Span_begin _ -> t.stack <- { child_ns = 0L } :: t.stack
    | Span_end { name; cat; dur_ns; args = _; _ } ->
      let child_ns, rest =
        match t.stack with
        | fr :: rest -> (fr.child_ns, rest)
        | [] -> (0L, [])  (* unbalanced: sink installed mid-span *)
      in
      t.stack <- rest;
      (match t.stack with
      | parent :: _ -> parent.child_ns <- Int64.add parent.child_ns dur_ns
      | [] -> ());
      let self_ns = Int64.max 0L (Int64.sub dur_ns child_ns) in
      let key = (cat, name) in
      let prev =
        match Hashtbl.find_opt t.spans_tbl key with
        | Some st -> st
        | None ->
          t.span_order <- key :: t.span_order;
          { spans = 0; total_ns = 0L; self_ns = 0L; max_ns = 0L }
      in
      Hashtbl.replace t.spans_tbl key
        {
          spans = prev.spans + 1;
          total_ns = Int64.add prev.total_ns dur_ns;
          self_ns = Int64.add prev.self_ns self_ns;
          max_ns = Int64.max prev.max_ns dur_ns;
        }
    | Count { name; delta; _ } ->
      (match Hashtbl.find_opt t.counters_tbl name with
      | Some v -> Hashtbl.replace t.counters_tbl name (v + delta)
      | None ->
        t.counter_order <- name :: t.counter_order;
        Hashtbl.replace t.counters_tbl name delta)
    | Gauge { name; v; _ } ->
      if not (Hashtbl.mem t.gauges_tbl name) then
        t.gauge_order <- name :: t.gauge_order;
      Hashtbl.replace t.gauges_tbl name v
    | Sample { name; v; _ } ->
      let prev =
        match Hashtbl.find_opt t.samples_tbl name with
        | Some st -> st
        | None ->
          t.sample_order <- name :: t.sample_order;
          { n = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity }
      in
      Hashtbl.replace t.samples_tbl name
        {
          n = prev.n + 1;
          sum = prev.sum +. v;
          min_v = min prev.min_v v;
          max_v = max prev.max_v v;
        };
      if is_latency_name name then begin
        let nb = Array.length latency_buckets in
        let counts =
          match Hashtbl.find_opt t.hists_tbl name with
          | Some c -> c
          | None ->
            let c = Array.make (nb + 1) 0 in
            Hashtbl.add t.hists_tbl name c;
            c
        in
        let i = ref 0 in
        while !i < nb && v > latency_buckets.(!i) do incr i done;
        counts.(!i) <- counts.(!i) + 1
      end
    | Instant _ -> ()
    (* decisions are content, not time; worker spans already account
       their wall time inside the worker — folding them into the
       parent's self-time stack would double-book the pump wait *)
    | Decision _ | Worker_span _ -> ()

  let sink t = { emit = emit t; flush = (fun () -> ()) }

  let span_stats t =
    List.rev_map
      (fun key -> (key, Hashtbl.find t.spans_tbl key))
      t.span_order

  let seconds ns = Int64.to_float ns /. 1e9

  let phases t =
    let order = ref [] in
    let totals = Hashtbl.create 8 in
    List.iter
      (fun ((cat, _), st) ->
        if not (Hashtbl.mem totals cat) then order := cat :: !order;
        let prev = Option.value ~default:0L (Hashtbl.find_opt totals cat) in
        Hashtbl.replace totals cat (Int64.add prev st.self_ns))
      (span_stats t);
    List.rev_map (fun cat -> (cat, seconds (Hashtbl.find totals cat))) !order

  let total_seconds t =
    List.fold_left (fun acc (_, s) -> acc +. s) 0.0 (phases t)

  let counters t =
    List.rev_map (fun name -> (name, Hashtbl.find t.counters_tbl name)) t.counter_order

  let counter t name = Option.value ~default:0 (Hashtbl.find_opt t.counters_tbl name)

  let gauges t =
    List.rev_map (fun name -> (name, Hashtbl.find t.gauges_tbl name)) t.gauge_order

  let samples t =
    List.rev_map (fun name -> (name, Hashtbl.find t.samples_tbl name)) t.sample_order

  (* Latency samples only (see [is_latency_name]), first-seen order.
     Each array has [Array.length latency_buckets + 1] per-bucket
     counts, the last slot being the above-ladder overflow. *)
  let histograms t =
    List.filter_map
      (fun (name, _) ->
        Option.map (fun c -> (name, Array.copy c)) (Hashtbl.find_opt t.hists_tbl name))
      (samples t)

  let pp ppf t =
    let open Format in
    let total = total_seconds t in
    let phases = List.sort (fun (_, a) (_, b) -> compare b a) (phases t) in
    fprintf ppf "@[<v>per-phase breakdown (self time):@,";
    List.iter
      (fun (cat, s) ->
        let cat = if cat = "" then "(uncategorized)" else cat in
        fprintf ppf "  %-14s %8.3fs  %5.1f%%@," cat s
          (if total > 0.0 then 100.0 *. s /. total else 0.0))
      phases;
    fprintf ppf "  %-14s %8.3fs  100.0%%@," "total" total;
    let stats = span_stats t in
    if stats <> [] then begin
      fprintf ppf "@,spans:%34s%8s%10s%10s%10s@," "" "count" "total" "self" "max";
      List.iter
        (fun ((cat, name), st) ->
          fprintf ppf "  %-14s %-23s %8d %9.3fs %9.3fs %9.3fs@," cat name
            st.spans (seconds st.total_ns) (seconds st.self_ns)
            (seconds st.max_ns))
        stats
    end;
    let counters = counters t in
    if counters <> [] then begin
      fprintf ppf "@,counters:@,";
      List.iter (fun (name, v) -> fprintf ppf "  %-38s %12d@," name v) counters
    end;
    let gauges = gauges t in
    if gauges <> [] then begin
      fprintf ppf "@,gauges:@,";
      List.iter (fun (name, v) -> fprintf ppf "  %-38s %12.3f@," name v) gauges
    end;
    let samples = samples t in
    if samples <> [] then begin
      fprintf ppf "@,histograms:%29s%8s%12s%10s%10s@," "" "n" "mean" "min" "max";
      List.iter
        (fun (name, st) ->
          fprintf ppf "  %-38s %7d %11.3f %9.3f %9.3f@," name st.n
            (if st.n = 0 then 0.0 else st.sum /. float_of_int st.n)
            st.min_v st.max_v)
        samples
    end;
    fprintf ppf "@]"
end

(* ---- Prometheus text exposition ---------------------------------------- *)

module Metrics = struct
  (* Prometheus metric names admit [a-zA-Z_:][a-zA-Z0-9_:]*; our event
     names use dots. Map everything else to '_' and guard a leading
     digit. *)
  let metric_name name =
    let buf = Buffer.create (String.length name + 8) in
    String.iteri
      (fun i c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char buf c
        | '0' .. '9' ->
          if i = 0 then Buffer.add_char buf '_';
          Buffer.add_char buf c
        | _ -> Buffer.add_char buf '_')
      name;
    Buffer.contents buf

  let prom_float f =
    match Float.classify_float f with
    | FP_nan -> "NaN"
    | FP_infinite -> if f > 0.0 then "+Inf" else "-Inf"
    | FP_normal | FP_subnormal | FP_zero -> float_repr f

  let latency_buckets = latency_buckets

  let escape_label_value v =
    let buf = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

  let header buf name ~help ~typ =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ)

  let sample_line buf name ?(labels = []) v =
    Buffer.add_string buf name;
    if labels <> [] then begin
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, lv) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "%s=\"%s\"" k (escape_label_value lv)))
        labels;
      Buffer.add_char buf '}'
    end;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (prom_float v);
    Buffer.add_char buf '\n'

  (* Render a [Summary] into Prometheus text exposition. Counters become
     monotone [_total] counters, gauges stay gauges, samples become
     summaries (min/max as extreme quantiles plus _sum/_count), per-phase
     self time is one labelled gauge family. When [res] is true a fresh
     resource snapshot is appended; recorded "res.*" gauges in the
     summary are dropped in favour of that snapshot so the file never
     carries two generations of the same gauge. *)
  let expose ?(res = true) summary =
    let buf = Buffer.create 4096 in
    List.iter
      (fun (name, v) ->
        let m = "hlts_" ^ metric_name name ^ "_total" in
        header buf m ~help:(Printf.sprintf "Event counter %s." name) ~typ:"counter";
        sample_line buf m (float_of_int v))
      (Summary.counters summary);
    let is_res name =
      String.length name >= 4 && String.sub name 0 4 = "res."
    in
    List.iter
      (fun (name, v) ->
        if not (res && is_res name) then begin
          let m = "hlts_" ^ metric_name name in
          header buf m ~help:(Printf.sprintf "Gauge %s." name) ~typ:"gauge";
          sample_line buf m v
        end)
      (Summary.gauges summary);
    let hists = Summary.histograms summary in
    List.iter
      (fun (name, (st : Summary.sample_stat)) ->
        let m = "hlts_" ^ metric_name name in
        match List.assoc_opt name hists with
        | Some counts ->
          (* latency sample: proper cumulative-bucket histogram *)
          header buf m
            ~help:(Printf.sprintf "Latency histogram %s." name)
            ~typ:"histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i le ->
              cum := !cum + counts.(i);
              sample_line buf (m ^ "_bucket")
                ~labels:[ ("le", prom_float le) ]
                (float_of_int !cum))
            latency_buckets;
          sample_line buf (m ^ "_bucket")
            ~labels:[ ("le", "+Inf") ]
            (float_of_int st.n);
          sample_line buf (m ^ "_sum") st.sum;
          sample_line buf (m ^ "_count") (float_of_int st.n)
        | None ->
          header buf m ~help:(Printf.sprintf "Sample summary %s." name) ~typ:"summary";
          if st.n > 0 then begin
            sample_line buf m ~labels:[ ("quantile", "0") ] st.min_v;
            sample_line buf m ~labels:[ ("quantile", "1") ] st.max_v
          end;
          sample_line buf (m ^ "_sum") st.sum;
          sample_line buf (m ^ "_count") (float_of_int st.n))
      (Summary.samples summary);
    (match Summary.phases summary with
    | [] -> ()
    | phases ->
      let m = "hlts_phase_self_seconds" in
      header buf m ~help:"Self time per span category." ~typ:"gauge";
      List.iter
        (fun (cat, s) ->
          let cat = if cat = "" then "uncategorized" else cat in
          sample_line buf m ~labels:[ ("phase", cat) ] s)
        phases);
    if res then begin
      List.iter
        (fun (name, v) ->
          let m = "hlts_" ^ metric_name name in
          header buf m ~help:(Printf.sprintf "Process resource %s." name) ~typ:"gauge";
          sample_line buf m v)
        (Res.gauges (Res.snapshot ()))
    end;
    Buffer.contents buf

  (* Minimal exposition-format reader, enough to round-trip what
     [expose] writes: used by the unit tests and by anything that wants
     to scrape a written snapshot. *)
  type sample = {
    m_name : string;
    m_labels : (string * string) list;
    m_value : float;
  }

  let parse_line line =
    let n = String.length line in
    let i = ref 0 in
    let fail msg = Error msg in
    let skip_sp () = while !i < n && (line.[!i] = ' ' || line.[!i] = '\t') do incr i done in
    let name_char c =
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
      | _ -> false
    in
    let read_name () =
      let start = !i in
      while !i < n && name_char line.[!i] do incr i done;
      String.sub line start (!i - start)
    in
    let m_name = read_name () in
    if m_name = "" then fail "expected metric name"
    else begin
      let labels = ref [] in
      let label_err = ref None in
      if !i < n && line.[!i] = '{' then begin
        incr i;
        let rec labels_loop () =
          skip_sp ();
          if !i < n && line.[!i] = '}' then incr i
          else begin
            let k = read_name () in
            if k = "" || !i + 1 >= n || line.[!i] <> '=' || line.[!i + 1] <> '"'
            then label_err := Some "bad label"
            else begin
              i := !i + 2;
              let buf = Buffer.create 16 in
              let rec str_loop () =
                if !i >= n then label_err := Some "unterminated label value"
                else
                  match line.[!i] with
                  | '"' -> incr i
                  | '\\' when !i + 1 < n ->
                    (match line.[!i + 1] with
                    | 'n' -> Buffer.add_char buf '\n'
                    | c -> Buffer.add_char buf c);
                    i := !i + 2;
                    str_loop ()
                  | c ->
                    Buffer.add_char buf c;
                    incr i;
                    str_loop ()
              in
              str_loop ();
              if !label_err = None then begin
                labels := (k, Buffer.contents buf) :: !labels;
                skip_sp ();
                if !i < n && line.[!i] = ',' then begin
                  incr i;
                  labels_loop ()
                end
                else if !i < n && line.[!i] = '}' then incr i
                else label_err := Some "expected , or } in labels"
              end
            end
          end
        in
        labels_loop ()
      end;
      match !label_err with
      | Some msg -> fail msg
      | None ->
        skip_sp ();
        let value_str = String.sub line !i (n - !i) |> String.trim in
        (* the value may be followed by an optional timestamp *)
        let value_str =
          match String.index_opt value_str ' ' with
          | Some sp -> String.sub value_str 0 sp
          | None -> value_str
        in
        let v =
          match value_str with
          | "+Inf" -> Some infinity
          | "-Inf" -> Some neg_infinity
          | "NaN" -> Some nan
          | s -> float_of_string_opt s
        in
        (match v with
        | None -> fail (Printf.sprintf "bad sample value %S" value_str)
        | Some m_value -> Ok { m_name; m_labels = List.rev !labels; m_value })
    end

  let parse text =
    let lines = String.split_on_char '\n' text in
    List.fold_left
      (fun acc line ->
        match acc with
        | Error _ -> acc
        | Ok samples ->
          let line = String.trim line in
          if line = "" || line.[0] = '#' then acc
          else begin
            match parse_line line with
            | Ok s -> Ok (s :: samples)
            | Error msg -> Error (Printf.sprintf "%s: %s" msg line)
          end)
      (Ok []) lines
    |> Result.map List.rev
end

(* ---- JSONL sinks ------------------------------------------------------- *)

(* One renderer serves both line-oriented sinks. [canonical] selects the
   journal shape for Decision events: a 0-based sequence number and no
   timestamp, so those lines are byte-identical at every [-j N]. The
   plain jsonl shape keeps the timestamp for stream consumers. *)
let make_jsonl ~canonical write =
  let seq = ref 0 in
  let line fields =
    write (Json.to_string (Json.Obj fields));
    write "\n"
  in
  let emit = function
    | Span_begin { name; cat; ts_ns; depth } ->
      line
        [
          ("ev", Json.Str "begin"); ("name", Json.Str name);
          ("cat", Json.Str cat); ("ts_us", Json.Float (us_of_ns ts_ns));
          ("depth", Json.Int depth);
        ]
    | Span_end { name; cat; ts_ns; dur_ns; depth; args } ->
      line
        [
          ("ev", Json.Str "end"); ("name", Json.Str name);
          ("cat", Json.Str cat); ("ts_us", Json.Float (us_of_ns ts_ns));
          ("dur_us", Json.Float (us_of_ns dur_ns)); ("depth", Json.Int depth);
          ("args", json_of_args args);
        ]
    | Count { name; delta; ts_ns } ->
      line
        [
          ("ev", Json.Str "count"); ("name", Json.Str name);
          ("delta", Json.Int delta); ("ts_us", Json.Float (us_of_ns ts_ns));
        ]
    | Gauge { name; v; ts_ns } ->
      line
        [
          ("ev", Json.Str "gauge"); ("name", Json.Str name);
          ("value", Json.Float v); ("ts_us", Json.Float (us_of_ns ts_ns));
        ]
    | Sample { name; v; ts_ns } ->
      line
        [
          ("ev", Json.Str "sample"); ("name", Json.Str name);
          ("value", Json.Float v); ("ts_us", Json.Float (us_of_ns ts_ns));
        ]
    | Instant { name; cat; args; ts_ns } ->
      line
        [
          ("ev", Json.Str "instant"); ("name", Json.Str name);
          ("cat", Json.Str cat); ("ts_us", Json.Float (us_of_ns ts_ns));
          ("args", json_of_args args);
        ]
    | Decision { d; ts_ns } ->
      if canonical then begin
        let fields =
          match Journal.encode d with
          | Json.Obj fields -> fields
          | _ -> assert false (* encode always yields an object *)
        in
        line (("j", Json.Int !seq) :: fields);
        incr seq
      end
      else
        line
          [
            ("ev", Json.Str "decision");
            ("ts_us", Json.Float (us_of_ns ts_ns)); ("d", Journal.encode d);
          ]
    | Worker_span { worker; ticket; span } ->
      line
        [
          ("ev", Json.Str "wspan"); ("worker", Json.Int worker);
          ("ticket", Json.Int ticket); ("name", Json.Str span.w_name);
          ("cat", Json.Str span.w_cat);
          ("ts_us", Json.Float (us_of_ns span.w_ts_ns));
          ("dur_us", Json.Float (us_of_ns span.w_dur_ns));
          ("depth", Json.Int span.w_depth); ("args", json_of_args span.w_args);
        ]
  in
  { emit; flush = (fun () -> ()) }

let jsonl_sink write = make_jsonl ~canonical:false write
let journal_sink write = make_jsonl ~canonical:true write

(* ---- heartbeat sink ----------------------------------------------------- *)

(* Appends one JSON object per line, at most one every [interval_ms],
   snapshotting counters, gauges, and process resources so an external
   tail (hlts top) can render live progress. Each snapshot is written
   with a single [write] call so concurrent readers never see a torn
   line. The final snapshot (flagged "final") is emitted on flush. *)
let heartbeat_sink ?(interval_ms = 100) write =
  let summary = Summary.create () in
  let t0 = Clock.now_ns () in
  let seq = ref 0 in
  let last = ref 0L in
  let finalized = ref false in
  let interval_ns = Int64.of_int (interval_ms * 1_000_000) in
  let is_res name = String.length name >= 4 && String.sub name 0 4 = "res." in
  let snapshot ~final () =
    let res =
      Res.gauges (Res.snapshot ())
      |> List.map (fun (name, v) ->
             (* strip the "res." prefix inside the dedicated object *)
             (String.sub name 4 (String.length name - 4), Json.Float v))
    in
    let counters =
      List.map (fun (n, v) -> (n, Json.Int v)) (Summary.counters summary)
    in
    let gauges =
      Summary.gauges summary
      |> List.filter (fun (n, _) -> not (is_res n))
      |> List.map (fun (n, v) -> (n, Json.Float v))
    in
    let fields =
      [
        ("hb", Json.Int !seq);
        ("t_s", Json.Float (Clock.seconds_since t0));
      ]
      @ (if final then [ ("final", Json.Bool true) ] else [])
      @ [
          ("res", Json.Obj res);
          ("counters", Json.Obj counters);
          ("gauges", Json.Obj gauges);
        ]
    in
    incr seq;
    write (Json.to_string (Json.Obj fields) ^ "\n")
  in
  let emit ev =
    Summary.emit summary ev;
    let now = Clock.now_ns () in
    if !last = 0L || Int64.sub now !last >= interval_ns then begin
      last := now;
      snapshot ~final:false ()
    end
  in
  let flush () =
    if not !finalized then begin
      finalized := true;
      snapshot ~final:true ()
    end
  in
  { emit; flush }

(* ---- Chrome trace_event sink ------------------------------------------- *)

let chrome_sink write =
  let t0 = Clock.now_ns () in
  let buf = Buffer.create 4096 in
  let first = ref true in
  let flushed = ref false in
  let totals : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let rel ts = us_of_ns (Int64.sub ts t0) in
  let record fields =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf (Json.to_string (Json.Obj fields))
  in
  (* pid lanes: 1 = the parent process, 2 + w = pool worker w. A
     process_name metadata record is emitted the first time each lane
     appears so the trace viewer labels them. *)
  let seen_pids : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let lane pid label =
    if not (Hashtbl.mem seen_pids pid) then begin
      Hashtbl.add seen_pids pid ();
      record
        [
          ("name", Json.Str "process_name"); ("ph", Json.Str "M");
          ("pid", Json.Int pid); ("tid", Json.Int 1);
          ("args", Json.Obj [ ("name", Json.Str label) ]);
        ]
    end
  in
  let common ?(pid = 1) name ph ts =
    if pid = 1 then lane 1 "hlts (parent)";
    [
      ("name", Json.Str name); ("ph", Json.Str ph);
      ("ts", Json.Float (rel ts)); ("pid", Json.Int pid); ("tid", Json.Int 1);
    ]
  in
  let counter_record name ts v =
    record (common name "C" ts @ [ ("args", Json.Obj [ ("value", v) ]) ])
  in
  let emit = function
    | Span_begin _ -> ()
    | Span_end { name; cat; ts_ns; dur_ns; args; _ } ->
      let cat = if cat = "" then "default" else cat in
      record
        (common name "X" (Int64.sub ts_ns dur_ns)
        @ [
            ("cat", Json.Str cat); ("dur", Json.Float (us_of_ns dur_ns));
            ("args", json_of_args args);
          ])
    | Count { name; delta; ts_ns } ->
      let total =
        float_of_int delta
        +. Option.value ~default:0.0 (Hashtbl.find_opt totals name)
      in
      Hashtbl.replace totals name total;
      counter_record name ts_ns (Json.Float total)
    | Gauge { name; v; ts_ns } | Sample { name; v; ts_ns } ->
      counter_record name ts_ns (Json.Float v)
    | Instant { name; cat; args; ts_ns } ->
      let cat = if cat = "" then "default" else cat in
      record
        (common name "i" ts_ns
        @ [ ("cat", Json.Str cat); ("s", Json.Str "t"); ("args", json_of_args args) ])
    | Decision { d; ts_ns } ->
      let kind, payload =
        match Journal.encode d with
        | Json.Obj (("ev", Json.Str kind) :: rest) -> (kind, rest)
        | _ -> ("decision", [])
      in
      record
        (common ("journal." ^ kind) "i" ts_ns
        @ [
            ("cat", Json.Str "journal"); ("s", Json.Str "t");
            ("args", Json.Obj payload);
          ])
    | Worker_span { worker; ticket; span } ->
      let pid = 2 + worker in
      lane pid (Printf.sprintf "pool worker %d" worker);
      let cat = if span.w_cat = "" then "default" else span.w_cat in
      record
        (common ~pid span.w_name "X" (Int64.sub span.w_ts_ns span.w_dur_ns)
        @ [
            ("cat", Json.Str cat);
            ("dur", Json.Float (us_of_ns span.w_dur_ns));
            ( "args",
              Json.Obj
                (("ticket", Json.Int ticket)
                :: (match json_of_args span.w_args with
                   | Json.Obj fields -> fields
                   | _ -> [])) );
          ])
  in
  let flush () =
    if not !flushed then begin
      flushed := true;
      write "{\"traceEvents\":[\n";
      write (Buffer.contents buf);
      write "\n],\"displayTimeUnit\":\"ms\"}\n"
    end
  in
  { emit; flush }

(* ---- request-scoped trace context -------------------------------------- *)

module Trace_ctx = struct
  type t = { trace_id : string; span_id : string; sampled : bool }

  (* splitmix64, seeded once per process from the monotonic clock and
     the pid. Trace ids only need to be unique, never reproducible, so
     this deliberately does NOT ride Util.Rng (obs is a leaf library
     and trace ids must not perturb any seeded stream). *)
  let prng = ref 0L
  let seeded = ref false

  let next64 () =
    if not !seeded then begin
      seeded := true;
      prng :=
        Int64.logxor (Clock.now_ns ())
          (Int64.mul (Int64.of_int (Unix.getpid ())) 0x9E3779B97F4A7C15L)
    end;
    prng := Int64.add !prng 0x9E3779B97F4A7C15L;
    let z = !prng in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let hex64 v = Printf.sprintf "%016Lx" v

  let generate ?(sampled = true) () =
    {
      trace_id = hex64 (next64 ()) ^ hex64 (next64 ());
      span_id = hex64 (next64 ());
      sampled;
    }

  let child t = { t with span_id = hex64 (next64 ()) }

  let is_hex s =
    String.for_all
      (fun c -> match c with '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
      s

  let valid t =
    String.length t.trace_id = 32
    && is_hex t.trace_id
    && String.length t.span_id = 16
    && is_hex t.span_id

  let to_json t =
    Json.Obj
      [
        ("id", Json.Str t.trace_id); ("span", Json.Str t.span_id);
        ("sampled", Json.Bool t.sampled);
      ]

  let of_json j =
    match (Json.member "id" j, Json.member "span" j) with
    | Some (Json.Str trace_id), Some (Json.Str span_id) ->
      let sampled =
        match Json.member "sampled" j with
        | Some (Json.Bool b) -> b
        | Some _ | None -> true
      in
      let t = { trace_id; span_id; sampled } in
      if valid t then Some t else None
    | _ -> None

  (* Tolerant by design: frames from clients that predate tracing carry
     no "trace" field, and foreign callers may send malformed ones —
     both decode to None and the request proceeds untraced. *)
  let of_envelope j =
    match Json.member "trace" j with
    | Some tj -> of_json tj
    | None -> None

  (* -- shipped spans ---------------------------------------------------- *)

  type span = {
    sp_lane : int;
    sp_label : string;
    sp_name : string;
    sp_cat : string;
    sp_ts_ns : int64;
    sp_dur_ns : int64;
    sp_args : (string * value) list;
  }

  let span_to_json s =
    Json.Obj
      [
        ("lane", Json.Int s.sp_lane); ("label", Json.Str s.sp_label);
        ("name", Json.Str s.sp_name); ("cat", Json.Str s.sp_cat);
        ("ts_ns", Json.Int (Int64.to_int s.sp_ts_ns));
        ("dur_ns", Json.Int (Int64.to_int s.sp_dur_ns));
        ("args", json_of_args s.sp_args);
      ]

  let value_of_json = function
    | Json.Int i -> Some (Int i)
    | Json.Float f -> Some (Float f)
    | Json.Str s -> Some (Str s)
    | Json.Bool b -> Some (Bool b)
    | Json.Null | Json.List _ | Json.Obj _ -> None

  let span_of_json j =
    match
      ( Json.member "lane" j, Json.member "label" j, Json.member "name" j,
        Json.member "cat" j, Json.member "ts_ns" j, Json.member "dur_ns" j )
    with
    | ( Some (Json.Int sp_lane), Some (Json.Str sp_label),
        Some (Json.Str sp_name), Some (Json.Str sp_cat),
        Some (Json.Int ts), Some (Json.Int dur) ) ->
      let sp_args =
        match Json.member "args" j with
        | Some (Json.Obj fields) ->
          List.filter_map
            (fun (k, v) -> Option.map (fun v -> (k, v)) (value_of_json v))
            fields
        | _ -> []
      in
      Some
        {
          sp_lane; sp_label; sp_name; sp_cat;
          sp_ts_ns = Int64.of_int ts;
          sp_dur_ns = Int64.of_int dur;
          sp_args;
        }
    | _ -> None

  (* A capture sink that turns the process's own Span_end events into
     lane [lane] spans and pool Worker_span events into lanes
     [lane + 1 + worker], for shipping with a reply. *)
  let collector ~lane ~label () =
    let acc = ref [] in
    let emit = function
      | Span_end { name; cat; ts_ns; dur_ns; args; _ } ->
        acc :=
          {
            sp_lane = lane; sp_label = label; sp_name = name; sp_cat = cat;
            sp_ts_ns = ts_ns; sp_dur_ns = dur_ns; sp_args = args;
          }
          :: !acc
      | Worker_span { worker; ticket; span } ->
        acc :=
          {
            sp_lane = lane + 1 + worker;
            sp_label = Printf.sprintf "pool worker %d" worker;
            sp_name = span.w_name;
            sp_cat = span.w_cat;
            sp_ts_ns = span.w_ts_ns;
            sp_dur_ns = span.w_dur_ns;
            sp_args = ("ticket", Int ticket) :: span.w_args;
          }
          :: !acc
      | Span_begin _ | Count _ | Gauge _ | Sample _ | Instant _ | Decision _ ->
        ()
    in
    ({ emit; flush = (fun () -> ()) }, fun () -> List.rev !acc)

  (* -- merged Chrome trace ------------------------------------------------ *)

  let chrome_trace ?(meta = []) spans =
    let start s = Int64.sub s.sp_ts_ns s.sp_dur_ns in
    let t0 =
      List.fold_left (fun acc s -> Int64.min acc (start s)) Int64.max_int spans
    in
    let t0 = if t0 = Int64.max_int then 0L else t0 in
    let records = ref [] in
    let seen_lanes : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    let lane_meta s =
      if not (Hashtbl.mem seen_lanes s.sp_lane) then begin
        Hashtbl.add seen_lanes s.sp_lane ();
        records :=
          Json.Obj
            [
              ("name", Json.Str "process_name"); ("ph", Json.Str "M");
              ("pid", Json.Int s.sp_lane); ("tid", Json.Int 1);
              ("args", Json.Obj [ ("name", Json.Str s.sp_label) ]);
            ]
          :: !records
      end
    in
    List.iter
      (fun s ->
        lane_meta s;
        let cat = if s.sp_cat = "" then "default" else s.sp_cat in
        records :=
          Json.Obj
            [
              ("name", Json.Str s.sp_name); ("ph", Json.Str "X");
              ("ts", Json.Float (us_of_ns (Int64.sub (start s) t0)));
              ("dur", Json.Float (us_of_ns s.sp_dur_ns));
              ("pid", Json.Int s.sp_lane); ("tid", Json.Int 1);
              ("cat", Json.Str cat); ("args", json_of_args s.sp_args);
            ]
          :: !records)
      spans;
    Json.Obj
      (("traceEvents", Json.List (List.rev !records))
      :: ("displayTimeUnit", Json.Str "ms")
      :: meta)
end
