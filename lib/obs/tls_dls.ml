(* OCaml >= 5.0: real domain-local storage. Copied to tls.ml by the
   dune rule in this directory. *)

type 'a t = 'a Domain.DLS.key

let make init = Domain.DLS.new_key init
let get k = Domain.DLS.get k
let set k v = Domain.DLS.set k v
