module Etpn = Hlts_etpn.Etpn
module Binding = Hlts_alloc.Binding
module Dfg = Hlts_dfg.Dfg
module Op = Hlts_dfg.Op
module B = Netlist.Builder

type mux_plan = {
  mp_sels : int list;
  mp_sources : int list;
}

type fu_plan = {
  fp_left : mux_plan;
  fp_right : mux_plan;
  fp_fn : (Op.kind * (int * bool) list) list;
}

type reg_plan = {
  rp_enable : int;
  rp_mux : mux_plan;
}

type plan = {
  p_regs : (int * reg_plan) list;
  p_fus : (int * fu_plan) list;
}

(* Distinct operation kinds executed by a unit, in a fixed order. *)
let unit_kinds etpn fu =
  let kinds =
    List.map
      (fun id -> (Dfg.op_by_id etpn.Etpn.dfg id).Dfg.kind)
      fu.Binding.fu_ops
  in
  List.sort_uniq compare kinds

let const_bus b bits value =
  List.init bits (fun i ->
      if (value lsr i) land 1 = 1 then B.const1 b else B.const0 b)

(* select-net assignments routing source index [i] through a mux tree *)
let sel_assignments sels i =
  List.mapi (fun bit net -> (net, (i lsr bit) land 1 = 1)) sels

let circuit_with_plan etpn ~bits =
  Hlts_obs.span ~cat:"netlist" "netlist.expand" @@ fun sp ->
  Hlts_obs.set sp "bits" (Hlts_obs.Int bits);
  let b = B.create () in
  let bus_of_node : (int, int list) Hashtbl.t = Hashtbl.create 32 in
  let reg_feed : (int, int list) Hashtbl.t = Hashtbl.create 32 in
  let nodes = etpn.Etpn.nodes in
  (* ports and constants *)
  List.iter
    (fun (id, n) ->
      match n with
      | Etpn.Port_in name ->
        Hashtbl.replace bus_of_node id (B.input b ("in_" ^ name) bits)
      | Etpn.Const c ->
        Hashtbl.replace bus_of_node id
          (const_bus b bits ((c mod (1 lsl min bits 30)) land max_int))
      | Etpn.Port_out _ | Etpn.Cond_out _ | Etpn.Reg _ | Etpn.Fu _ -> ())
    nodes;
  (* registers: DFFs + hold muxes with a deferred load bus *)
  let reg_enable : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (id, n) ->
      match n with
      | Etpn.Reg r ->
        let k = r.Binding.reg_id in
        let enable = List.hd (B.input b (Printf.sprintf "en_r%d" k) 1) in
        Hashtbl.replace reg_enable id enable;
        let loads = B.fresh_bus b bits in
        let feeds = B.fresh_bus b bits in
        let qs = List.map (B.dff b) feeds in
        List.iter2
          (fun (feed, q) load ->
            let m = B.gate b Netlist.G_mux2 [ enable; q; load ] in
            B.drive b ~dst:feed ~src:m)
          (List.combine feeds qs) loads;
        Hashtbl.replace bus_of_node id qs;
        Hashtbl.replace reg_feed id loads
      | Etpn.Port_in _ | Etpn.Port_out _ | Etpn.Cond_out _ | Etpn.Const _
      | Etpn.Fu _ -> ())
    nodes;
  let port_sources id p =
    List.filter_map
      (fun a -> if a.Etpn.a_port = p then Some a.Etpn.a_src else None)
      (Etpn.in_arcs etpn id)
    |> List.sort_uniq compare
  in
  let muxed_input name id p =
    let sources = port_sources id p in
    let buses = List.map (Hashtbl.find bus_of_node) sources in
    let sels, out = B.mux_tree b buses in
    if sels <> [] then B.declare_input b name sels;
    ({ mp_sels = sels; mp_sources = sources }, out)
  in
  (* functional units *)
  let fu_cond : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let fu_plans = ref [] in
  List.iter
    (fun (id, n) ->
      match n with
      | Etpn.Fu fu ->
        let k = fu.Binding.fu_id in
        let fp_left, left =
          muxed_input (Printf.sprintf "sel_fu%d_l" k) id (Some Etpn.P_left)
        in
        let fp_right, right =
          muxed_input (Printf.sprintf "sel_fu%d_r" k) id (Some Etpn.P_right)
        in
        let kinds = unit_kinds etpn fu in
        let has kind = List.mem kind kinds in
        let fn_nets = ref [] in
        let fn_bit () =
          let net = B.fresh b in
          fn_nets := net :: !fn_nets;
          net
        in
        (* data sub-results, one slot per family, in a fixed order *)
        let sub_net = if has Op.Add && has Op.Sub then Some (fn_bit ()) else None in
        let data_slots = ref [] in
        let add_slot kinds_of bus = data_slots := (kinds_of, bus) :: !data_slots in
        (match sub_net with
        | Some sub ->
          let sums, _ = B.add_sub b ~sub left right in
          add_slot [ Op.Add; Op.Sub ] sums
        | None ->
          if has Op.Add then begin
            let sums, _ = B.ripple_adder b ~cin:(B.const0 b) left right in
            add_slot [ Op.Add ] sums
          end
          else if has Op.Sub then begin
            let sums, _ = B.add_sub b ~sub:(B.const1 b) left right in
            add_slot [ Op.Sub ] sums
          end);
        if has Op.Mul then add_slot [ Op.Mul ] (B.multiplier b left right);
        List.iter
          (fun (kind, gk) ->
            if has kind then add_slot [ kind ] (B.bitwise b gk left right))
          [ (Op.And, Netlist.G_and); (Op.Or, Netlist.G_or); (Op.Xor, Netlist.G_xor) ];
        let data_slots = List.rev !data_slots in
        (* condition sub-results, in kind order *)
        let cmp kind =
          match kind with
          | Op.Lt -> Some (B.less_than b left right)
          | Op.Gt -> Some (B.less_than b right left)
          | Op.Le -> Some (B.gate b Netlist.G_not [ B.less_than b right left ])
          | Op.Ge -> Some (B.gate b Netlist.G_not [ B.less_than b left right ])
          | Op.Eq -> Some (B.equal b left right)
          | Op.Ne -> Some (B.gate b Netlist.G_not [ B.equal b left right ])
          | Op.Add | Op.Sub | Op.Mul | Op.And | Op.Or | Op.Xor -> None
        in
        let cond_slots =
          List.filter_map
            (fun kind -> Option.map (fun net -> (kind, net)) (cmp kind))
            kinds
        in
        (* result muxes *)
        let data_sels =
          match data_slots with
          | [] -> []
          | slots ->
            let sels, out = B.mux_tree b (List.map snd slots) in
            List.iter (fun s -> fn_nets := s :: !fn_nets) sels;
            Hashtbl.replace bus_of_node id out;
            sels
        in
        let cond_sels =
          match cond_slots with
          | [] -> []
          | slots ->
            let sels, out = B.mux_tree b (List.map (fun (_, n) -> [ n ]) slots) in
            List.iter (fun s -> fn_nets := s :: !fn_nets) sels;
            Hashtbl.replace fu_cond id (List.hd out);
            sels
        in
        if !fn_nets <> [] then
          B.declare_input b (Printf.sprintf "fn_fu%d" k) (List.rev !fn_nets);
        (* per-kind function-select assignments *)
        let fp_fn =
          List.map
            (fun kind ->
              let arith =
                match sub_net with
                | Some net when kind = Op.Add -> [ (net, false) ]
                | Some net when kind = Op.Sub -> [ (net, true) ]
                | Some _ | None -> []
              in
              let data =
                match
                  Hlts_util.Listx.index_of
                    (fun (kinds_of, _) -> List.mem kind kinds_of)
                    data_slots
                with
                | Some slot -> sel_assignments data_sels slot
                | None -> []
              in
              let cond =
                match
                  Hlts_util.Listx.index_of (fun (k', _) -> k' = kind) cond_slots
                with
                | Some slot -> sel_assignments cond_sels slot
                | None -> []
              in
              (kind, arith @ data @ cond))
            kinds
        in
        fu_plans := (k, { fp_left; fp_right; fp_fn }) :: !fu_plans
      | Etpn.Port_in _ | Etpn.Port_out _ | Etpn.Cond_out _ | Etpn.Const _
      | Etpn.Reg _ -> ())
    nodes;
  (* close register load buses *)
  let reg_plans = ref [] in
  List.iter
    (fun (id, n) ->
      match n with
      | Etpn.Reg r ->
        let rp_mux, out =
          muxed_input (Printf.sprintf "sel_r%d" r.Binding.reg_id) id None
        in
        List.iter2
          (fun dst src -> B.drive b ~dst ~src)
          (Hashtbl.find reg_feed id) out;
        reg_plans :=
          (r.Binding.reg_id, { rp_enable = Hashtbl.find reg_enable id; rp_mux })
          :: !reg_plans
      | Etpn.Port_in _ | Etpn.Port_out _ | Etpn.Cond_out _ | Etpn.Const _
      | Etpn.Fu _ -> ())
    nodes;
  (* outputs *)
  List.iter
    (fun (id, n) ->
      match n with
      | Etpn.Port_out name ->
        let src =
          match port_sources id None with
          | [ s ] -> s
          | _ -> invalid_arg "Expand.circuit: output port without unique source"
        in
        B.output b ("out_" ^ name) (Hashtbl.find bus_of_node src)
      | Etpn.Cond_out op_id ->
        let src =
          match port_sources id None with
          | [ s ] -> s
          | _ -> invalid_arg "Expand.circuit: condition without unique source"
        in
        B.output b (Printf.sprintf "cond_N%d" op_id) [ Hashtbl.find fu_cond src ]
      | Etpn.Port_in _ | Etpn.Reg _ | Etpn.Fu _ | Etpn.Const _ -> ())
    nodes;
  ( Netlist.prune (Netlist.simplify (B.finish b)),
    { p_regs = List.rev !reg_plans; p_fus = List.rev !fu_plans } )

let circuit etpn ~bits = fst (circuit_with_plan etpn ~bits)
