type place = {
  p_id : int;
  p_name : string;
  p_delay : int;
}

type transition = {
  t_id : int;
  t_name : string;
  t_in : int list;
  t_out : int list;
}

type t = {
  places : (int, place) Hashtbl.t;
  transitions : (int, transition) Hashtbl.t;
  initial : int list;
  outgoing : (int, int list) Hashtbl.t;  (* place id -> transitions reading it *)
}

let make ~places ~transitions ~initial =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let ptbl = Hashtbl.create 16 and ttbl = Hashtbl.create 16 in
  let outgoing = Hashtbl.create 16 in
  let rec add_places = function
    | [] -> Ok ()
    | p :: rest ->
      if Hashtbl.mem ptbl p.p_id then err "duplicate place %d" p.p_id
      else if p.p_delay < 0 then err "negative delay on place %d" p.p_id
      else begin
        Hashtbl.add ptbl p.p_id p;
        add_places rest
      end
  in
  let rec add_transitions = function
    | [] -> Ok ()
    | tr :: rest ->
      if Hashtbl.mem ttbl tr.t_id then err "duplicate transition %d" tr.t_id
      else if tr.t_in = [] then err "transition %d has no inputs" tr.t_id
      else begin
        match
          List.find_opt (fun p -> not (Hashtbl.mem ptbl p)) (tr.t_in @ tr.t_out)
        with
        | Some p -> err "transition %d references unknown place %d" tr.t_id p
        | None ->
          Hashtbl.add ttbl tr.t_id tr;
          let record p =
            let old = Option.value ~default:[] (Hashtbl.find_opt outgoing p) in
            Hashtbl.replace outgoing p (tr.t_id :: old)
          in
          List.iter record tr.t_in;
          add_transitions rest
      end
  in
  match add_places places with
  | Error _ as e -> e
  | Ok () ->
    (match add_transitions transitions with
    | Error _ as e -> e
    | Ok () ->
      if initial = [] then err "empty initial marking"
      else if List.exists (fun p -> not (Hashtbl.mem ptbl p)) initial then
        err "initial marking references unknown place"
      else Ok { places = ptbl; transitions = ttbl; initial; outgoing })

let make_exn ~places ~transitions ~initial =
  match make ~places ~transitions ~initial with
  | Ok t -> t
  | Error msg -> invalid_arg ("Petri.make: " ^ msg)

let place t id = Hashtbl.find t.places id

let transitions_of t =
  List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.transitions [])

let final_places t =
  let is_final id =
    match Hashtbl.find_opt t.outgoing id with
    | None | Some [] -> true
    | Some (_ :: _) -> false
  in
  List.sort compare
    (Hashtbl.fold
       (fun id _ acc -> if is_final id then id :: acc else acc)
       t.places [])

exception Bounded

type path = {
  total_time : int;
  steps : (int * int) list;
  tree_nodes : int;
}

(* A marking maps marked places to the time their token becomes available.
   Kept as a sorted association list so it can serve as a memo key. *)
type marking = (int * int) list

let initial_marking t : marking =
  let avail id = (id, (place t id).p_delay) in
  List.sort compare (List.map avail t.initial)

let enabled t (m : marking) =
  let marked = List.map fst m in
  let ok tr = List.for_all (fun p -> List.mem p marked) tr.t_in in
  List.sort compare
    (Hashtbl.fold
       (fun id tr acc -> if ok tr then id :: acc else acc)
       t.transitions [])

let fire t (m : marking) tr_id : marking * int =
  let tr = Hashtbl.find t.transitions tr_id in
  let fire_time =
    List.fold_left (fun acc p -> max acc (List.assoc p m)) 0 tr.t_in
  in
  let without_inputs = List.filter (fun (p, _) -> not (List.mem p tr.t_in)) m in
  let add_out m p =
    let avail = fire_time + (place t p).p_delay in
    (* A place already marked keeps the later token (worst case). *)
    match List.assoc_opt p m with
    | Some old when old >= avail -> m
    | Some _ -> (p, avail) :: List.remove_assoc p m
    | None -> (p, avail) :: m
  in
  (List.sort compare (List.fold_left add_out without_inputs tr.t_out), fire_time)

let marking_time (m : marking) = List.fold_left (fun acc (_, a) -> max acc a) 0 m

let critical_path ?(max_nodes = 200_000) t =
  Hlts_obs.span ~cat:"petri" "petri.critical_path" @@ fun sp ->
  let visited : (marking, unit) Hashtbl.t = Hashtbl.create 256 in
  let nodes = ref 0 in
  let best_time = ref 0 in
  let best_steps = ref [] in
  (* Depth-first exploration of the reachability tree; [steps] accumulates
     the firing sequence leading to the current marking (reversed). *)
  let rec explore m steps =
    incr nodes;
    if !nodes > max_nodes then raise Bounded;
    if not (Hashtbl.mem visited m) then begin
      Hashtbl.add visited m ();
      match enabled t m with
      | [] ->
        let time = marking_time m in
        if time >= !best_time then begin
          best_time := time;
          best_steps := steps
        end
      | trs ->
        let step tr_id =
          let m', fire_time = fire t m tr_id in
          explore m' ((tr_id, fire_time) :: steps)
        in
        List.iter step trs
    end
  in
  let m0 = initial_marking t in
  best_time := marking_time m0;
  explore m0 [];
  Hlts_obs.set sp "tree_nodes" (Hlts_obs.Int !nodes);
  Hlts_obs.sample "petri.tree_nodes" (float_of_int !nodes);
  { total_time = !best_time; steps = List.rev !best_steps; tree_nodes = !nodes }

let execution_time ?max_nodes t = (critical_path ?max_nodes t).total_time

let chain ?(step_delay = 1) n =
  assert (n >= 0);
  let start = { p_id = 0; p_name = "start"; p_delay = 0 } in
  let step i =
    { p_id = i; p_name = Printf.sprintf "s%d" i; p_delay = step_delay }
  in
  let places = start :: List.init n (fun i -> step (i + 1)) in
  let trans i =
    { t_id = i + 1; t_name = Printf.sprintf "t%d" (i + 1);
      t_in = [ i ]; t_out = [ i + 1 ] }
  in
  make_exn ~places ~transitions:(List.init n trans) ~initial:[ 0 ]

let pp ppf t =
  let places =
    List.sort compare (Hashtbl.fold (fun _ p acc -> p :: acc) t.places [])
  in
  Format.fprintf ppf "@[<v>petri net: %d places, %d transitions@,"
    (Hashtbl.length t.places) (Hashtbl.length t.transitions);
  List.iter
    (fun p -> Format.fprintf ppf "place %d %s delay=%d@," p.p_id p.p_name p.p_delay)
    places;
  let trs =
    List.sort compare (Hashtbl.fold (fun _ tr acc -> tr :: acc) t.transitions [])
  in
  let pp_ids ids = String.concat "," (List.map string_of_int ids) in
  List.iter
    (fun tr ->
      Format.fprintf ppf "trans %d %s: {%s} -> {%s}@," tr.t_id tr.t_name
        (pp_ids tr.t_in) (pp_ids tr.t_out))
    trs;
  Format.fprintf ppf "initial: {%s}@]" (pp_ids t.initial)
